//! Heap dictionaries the VM manipulates directly.
//!
//! Two kinds: **MethodDictionary** (selector Symbol → CompiledMethod, open
//! addressing over parallel key/value Arrays) used for method lookup, and
//! the **SystemDictionary** `Smalltalk` (Symbol → Association) holding the
//! global bindings that compiled methods reference through their literal
//! frames. Both live in old space (they are image structure); dictionary
//! growth allocates replacement arrays in old space too.

use mst_objmem::layout::{assoc, method_dict};
use mst_objmem::{ObjectMemory, Oop, So};

/// Layout of the `Smalltalk` SystemDictionary: tally + Association array.
pub mod system_dict {
    /// SmallInteger count of bindings.
    pub const TALLY: usize = 0;
    /// Array of Associations (nil = empty bucket), capacity a power of two.
    pub const ARRAY: usize = 1;
    /// Instance size.
    pub const SIZE: usize = 2;
}

fn probe_start(mem: &ObjectMemory, key: Oop, capacity: usize) -> usize {
    (mem.identity_hash(key) as usize) & (capacity - 1)
}

// ---------------------------------------------------------------------
// MethodDictionary
// ---------------------------------------------------------------------

/// Allocates an empty MethodDictionary (old space) with the given capacity.
///
/// # Panics
///
/// Panics if old space is exhausted or capacity is not a power of two.
pub fn method_dict_new(mem: &ObjectMemory, capacity: usize) -> Oop {
    assert!(capacity.is_power_of_two());
    let class = mem.specials().get(So::ClassMethodDictionary);
    let dict = mem
        .allocate_old(class, mst_objmem::ObjFormat::Pointers, method_dict::SIZE, 0)
        .expect("old space exhausted allocating a method dictionary");
    let keys = mem.alloc_array_old(capacity).expect("old space exhausted");
    let values = mem.alloc_array_old(capacity).expect("old space exhausted");
    mem.store_nocheck(dict, method_dict::TALLY, Oop::from_small_int(0));
    mem.store(dict, method_dict::KEYS, keys);
    mem.store(dict, method_dict::VALUES, values);
    dict
}

/// Looks up a selector. `dict` may be nil (empty class), yielding `None`.
#[inline]
pub fn method_dict_at(mem: &ObjectMemory, dict: Oop, selector: Oop) -> Option<Oop> {
    if dict == mem.nil() {
        return None;
    }
    let keys = mem.fetch(dict, method_dict::KEYS);
    let capacity = mem.header(keys).body_words();
    let nil = mem.nil();
    let mut i = probe_start(mem, selector, capacity);
    loop {
        let k = mem.fetch(keys, i);
        if k == selector {
            return Some(mem.fetch(mem.fetch(dict, method_dict::VALUES), i));
        }
        if k == nil {
            return None;
        }
        i = (i + 1) & (capacity - 1);
    }
}

/// Installs (or replaces) a selector → method binding. Grows at 3/4 full.
pub fn method_dict_put(mem: &ObjectMemory, dict: Oop, selector: Oop, method: Oop) {
    let keys = mem.fetch(dict, method_dict::KEYS);
    let values = mem.fetch(dict, method_dict::VALUES);
    let capacity = mem.header(keys).body_words();
    let nil = mem.nil();
    let mut i = probe_start(mem, selector, capacity);
    loop {
        let k = mem.fetch(keys, i);
        if k == selector {
            mem.store(values, i, method);
            return;
        }
        if k == nil {
            let tally = mem.fetch(dict, method_dict::TALLY).as_small_int() as usize;
            if (tally + 1) * 4 > capacity * 3 {
                grow_method_dict(mem, dict, capacity * 2);
                method_dict_put(mem, dict, selector, method);
                return;
            }
            mem.store(keys, i, selector);
            mem.store(values, i, method);
            mem.store_nocheck(
                dict,
                method_dict::TALLY,
                Oop::from_small_int(tally as i64 + 1),
            );
            return;
        }
        i = (i + 1) & (capacity - 1);
    }
}

fn grow_method_dict(mem: &ObjectMemory, dict: Oop, new_capacity: usize) {
    let old_keys = mem.fetch(dict, method_dict::KEYS);
    let old_values = mem.fetch(dict, method_dict::VALUES);
    let old_capacity = mem.header(old_keys).body_words();
    let keys = mem
        .alloc_array_old(new_capacity)
        .expect("old space exhausted");
    let values = mem
        .alloc_array_old(new_capacity)
        .expect("old space exhausted");
    mem.store(dict, method_dict::KEYS, keys);
    mem.store(dict, method_dict::VALUES, values);
    mem.store_nocheck(dict, method_dict::TALLY, Oop::from_small_int(0));
    let nil = mem.nil();
    for i in 0..old_capacity {
        let k = mem.fetch(old_keys, i);
        if k != nil {
            method_dict_put(mem, dict, k, mem.fetch(old_values, i));
        }
    }
}

/// Iterates (selector, method) pairs.
pub fn method_dict_each(mem: &ObjectMemory, dict: Oop, mut f: impl FnMut(Oop, Oop)) {
    if dict == mem.nil() {
        return;
    }
    let keys = mem.fetch(dict, method_dict::KEYS);
    let values = mem.fetch(dict, method_dict::VALUES);
    let nil = mem.nil();
    for i in 0..mem.header(keys).body_words() {
        let k = mem.fetch(keys, i);
        if k != nil {
            f(k, mem.fetch(values, i));
        }
    }
}

/// Number of installed selectors.
pub fn method_dict_len(mem: &ObjectMemory, dict: Oop) -> usize {
    if dict == mem.nil() {
        0
    } else {
        mem.fetch(dict, method_dict::TALLY).as_small_int() as usize
    }
}

// ---------------------------------------------------------------------
// SystemDictionary (`Smalltalk`)
// ---------------------------------------------------------------------

/// Allocates the SystemDictionary and registers it as a special object.
pub fn system_dict_create(mem: &ObjectMemory, capacity: usize) -> Oop {
    assert!(capacity.is_power_of_two());
    // Its class slot is patched by the bootstrap once classes exist.
    let dict = mem
        .allocate_old(
            Oop::ZERO,
            mst_objmem::ObjFormat::Pointers,
            system_dict::SIZE,
            0,
        )
        .expect("old space exhausted allocating Smalltalk");
    let array = mem.alloc_array_old(capacity).expect("old space exhausted");
    mem.store_nocheck(dict, system_dict::TALLY, Oop::from_small_int(0));
    mem.store(dict, system_dict::ARRAY, array);
    mem.specials().set(So::SmalltalkDict, dict);
    dict
}

/// Finds the Association binding `name`, if any.
pub fn global_lookup(mem: &ObjectMemory, name: &str) -> Option<Oop> {
    let sym = mem.find_symbol(name)?;
    global_lookup_sym(mem, sym)
}

/// Finds the Association binding the symbol, if any.
pub fn global_lookup_sym(mem: &ObjectMemory, sym: Oop) -> Option<Oop> {
    let dict = mem.specials().get(So::SmalltalkDict);
    let array = mem.fetch(dict, system_dict::ARRAY);
    let capacity = mem.header(array).body_words();
    let nil = mem.nil();
    let mut i = probe_start(mem, sym, capacity);
    loop {
        let a = mem.fetch(array, i);
        if a == nil {
            return None;
        }
        if mem.fetch(a, assoc::KEY) == sym {
            return Some(a);
        }
        i = (i + 1) & (capacity - 1);
    }
}

/// Returns the Association binding `name`, creating it (value nil, old
/// space) if absent — the behaviour method installation relies on for
/// forward references between classes.
pub fn global_binding(mem: &ObjectMemory, name: &str) -> Oop {
    let sym = mem.intern(name);
    if let Some(a) = global_lookup_sym(mem, sym) {
        return a;
    }
    let class = mem.specials().get(So::ClassAssociation);
    let a = mem
        .allocate_old(class, mst_objmem::ObjFormat::Pointers, assoc::SIZE, 0)
        .expect("old space exhausted allocating a global binding");
    mem.store(a, assoc::KEY, sym);
    system_dict_insert(mem, a);
    a
}

/// Sets a global's value, creating the binding if needed.
pub fn global_put(mem: &ObjectMemory, name: &str, value: Oop) -> Oop {
    let binding = global_binding(mem, name);
    mem.store(binding, assoc::VALUE, value);
    binding
}

/// Reads a global's value (nil if unbound).
pub fn global_get(mem: &ObjectMemory, name: &str) -> Oop {
    match global_lookup(mem, name) {
        Some(a) => mem.fetch(a, assoc::VALUE),
        None => mem.nil(),
    }
}

fn system_dict_insert(mem: &ObjectMemory, association: Oop) {
    let dict = mem.specials().get(So::SmalltalkDict);
    let array = mem.fetch(dict, system_dict::ARRAY);
    let capacity = mem.header(array).body_words();
    let tally = mem.fetch(dict, system_dict::TALLY).as_small_int() as usize;
    if (tally + 1) * 4 > capacity * 3 {
        let new_array = mem
            .alloc_array_old(capacity * 2)
            .expect("old space exhausted");
        let old_array = array;
        mem.store(dict, system_dict::ARRAY, new_array);
        mem.store_nocheck(dict, system_dict::TALLY, Oop::from_small_int(0));
        let nil = mem.nil();
        for i in 0..capacity {
            let a = mem.fetch(old_array, i);
            if a != nil {
                system_dict_insert(mem, a);
            }
        }
        system_dict_insert(mem, association);
        return;
    }
    let key = mem.fetch(association, assoc::KEY);
    let nil = mem.nil();
    let mut i = probe_start(mem, key, capacity);
    loop {
        if mem.fetch(array, i) == nil {
            mem.store(array, i, association);
            mem.store_nocheck(
                dict,
                system_dict::TALLY,
                Oop::from_small_int(tally as i64 + 1),
            );
            return;
        }
        i = (i + 1) & (capacity - 1);
    }
}

/// Iterates every Association in the SystemDictionary.
pub fn global_each(mem: &ObjectMemory, mut f: impl FnMut(Oop)) {
    let dict = mem.specials().get(So::SmalltalkDict);
    let array = mem.fetch(dict, system_dict::ARRAY);
    let nil = mem.nil();
    for i in 0..mem.header(array).body_words() {
        let a = mem.fetch(array, i);
        if a != nil {
            f(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_objmem::{MemoryConfig, ObjFormat};

    fn test_mem() -> ObjectMemory {
        let mem = ObjectMemory::new(MemoryConfig {
            old_words: 64 << 10,
            eden_words: 8 << 10,
            survivor_words: 4 << 10,
            ..MemoryConfig::default()
        });
        let nil = mem
            .allocate_old(Oop::ZERO, ObjFormat::Pointers, 0, 0)
            .unwrap();
        mem.specials().set(So::Nil, nil);
        for which in [
            So::ClassSymbol,
            So::ClassArray,
            So::ClassAssociation,
            So::ClassMethodDictionary,
        ] {
            let c = mem
                .allocate_old(Oop::ZERO, ObjFormat::Pointers, 8, 0)
                .unwrap();
            mem.specials().set(which, c);
        }
        system_dict_create(&mem, 8);
        mem
    }

    #[test]
    fn method_dict_put_and_get() {
        let mem = test_mem();
        let dict = method_dict_new(&mem, 8);
        let sel = mem.intern("foo");
        let m = mem.alloc_array_old(1).unwrap(); // stand-in for a method
        assert_eq!(method_dict_at(&mem, dict, sel), None);
        method_dict_put(&mem, dict, sel, m);
        assert_eq!(method_dict_at(&mem, dict, sel), Some(m));
        assert_eq!(method_dict_len(&mem, dict), 1);
        // Replacement keeps the tally.
        let m2 = mem.alloc_array_old(1).unwrap();
        method_dict_put(&mem, dict, sel, m2);
        assert_eq!(method_dict_at(&mem, dict, sel), Some(m2));
        assert_eq!(method_dict_len(&mem, dict), 1);
    }

    #[test]
    fn method_dict_grows() {
        let mem = test_mem();
        let dict = method_dict_new(&mem, 4);
        let methods: Vec<(Oop, Oop)> = (0..40)
            .map(|i| {
                let sel = mem.intern(&format!("sel{i}"));
                let m = mem.alloc_array_old(1).unwrap();
                method_dict_put(&mem, dict, sel, m);
                (sel, m)
            })
            .collect();
        assert_eq!(method_dict_len(&mem, dict), 40);
        for (sel, m) in methods {
            assert_eq!(method_dict_at(&mem, dict, sel), Some(m));
        }
        let mut count = 0;
        method_dict_each(&mem, dict, |_, _| count += 1);
        assert_eq!(count, 40);
    }

    #[test]
    fn lookup_in_nil_dict() {
        let mem = test_mem();
        let sel = mem.intern("foo");
        assert_eq!(method_dict_at(&mem, mem.nil(), sel), None);
        assert_eq!(method_dict_len(&mem, mem.nil()), 0);
    }

    #[test]
    fn globals_create_and_update() {
        let mem = test_mem();
        assert_eq!(global_get(&mem, "Transcript"), mem.nil());
        assert!(global_lookup(&mem, "Transcript").is_none());
        let v = mem.alloc_array_old(1).unwrap();
        global_put(&mem, "Transcript", v);
        assert_eq!(global_get(&mem, "Transcript"), v);
        // Binding identity is stable across updates.
        let b1 = global_binding(&mem, "Transcript");
        let v2 = mem.alloc_array_old(1).unwrap();
        global_put(&mem, "Transcript", v2);
        assert_eq!(global_binding(&mem, "Transcript"), b1);
        assert_eq!(global_get(&mem, "Transcript"), v2);
    }

    #[test]
    fn system_dict_grows_past_initial_capacity() {
        let mem = test_mem();
        for i in 0..50 {
            global_put(&mem, &format!("Global{i}"), Oop::from_small_int(i));
        }
        for i in 0..50 {
            assert_eq!(global_get(&mem, &format!("Global{i}")).as_small_int(), i);
        }
        let mut n = 0;
        global_each(&mem, |_| n += 1);
        assert_eq!(n, 50);
    }
}
