//! Method-lookup caches.
//!
//! "A Smalltalk implementation performs a 'method lookup' … very frequently;
//! in typical interactive use, more than 10% of the bytecodes interpreted
//! require lookup. As a result, most Smalltalk implementations rely heavily
//! on software method-lookup caches" (paper §3.2). This module provides the
//! cache structure used by both policies: the per-interpreter replicated
//! cache and the global serialized cache with two-level locking.
//!
//! Entries store raw oop bits plus the method's decoded dispatch data so a
//! hit avoids touching the method header. Caches are invalidated wholesale
//! whenever the GC epoch changes (objects move) or a method is (re)installed.

use mst_objmem::Oop;

/// Number of entries in a cache (power of two).
pub const CACHE_SIZE: usize = 1024;

/// One cache line: (selector, class) → (method, dispatch data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Raw selector oop (0 = empty).
    pub selector: u64,
    /// Raw class oop.
    pub class: u64,
    /// Raw method oop.
    pub method: u64,
    /// Decoded method header (primitive, counts) to skip a heap read.
    pub num_args: u8,
    /// Total temporaries.
    pub num_temps: u8,
    /// Primitive index or 0.
    pub primitive: u16,
    /// Large-context flag.
    pub large_context: bool,
    /// Leading pointer slots (1 + literal count).
    pub pointer_slots: u16,
}

impl CacheEntry {
    /// An empty line.
    pub const EMPTY: CacheEntry = CacheEntry {
        selector: 0,
        class: 0,
        method: 0,
        num_args: 0,
        num_temps: 0,
        primitive: 0,
        large_context: false,
        pointer_slots: 0,
    };
}

/// Hash of a (selector, class) pair onto a cache index.
#[inline]
pub fn cache_index(selector: Oop, class: Oop) -> usize {
    let h = selector.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ class.raw().rotate_left(17);
    (h as usize >> 3) & (CACHE_SIZE - 1)
}

/// A per-interpreter (replicated) cache.
#[derive(Debug)]
pub struct LocalCache {
    entries: Box<[CacheEntry; CACHE_SIZE]>,
    /// GC epoch the entries are valid for.
    pub epoch: u64,
}

impl LocalCache {
    /// Creates an empty cache tagged with the given epoch.
    pub fn new(epoch: u64) -> LocalCache {
        LocalCache {
            entries: Box::new([CacheEntry::EMPTY; CACHE_SIZE]),
            epoch,
        }
    }

    /// Probes for a (selector, class) pair.
    #[inline]
    pub fn probe(&self, selector: Oop, class: Oop) -> Option<&CacheEntry> {
        let e = &self.entries[cache_index(selector, class)];
        if e.selector == selector.raw() && e.class == class.raw() {
            Some(e)
        } else {
            None
        }
    }

    /// Installs an entry.
    #[inline]
    pub fn insert(&mut self, entry: CacheEntry) {
        let idx = cache_index(Oop::from_raw(entry.selector), Oop::from_raw(entry.class));
        self.entries[idx] = entry;
    }

    /// Empties the cache and stamps it with a new epoch.
    pub fn clear(&mut self, epoch: u64) {
        self.entries.fill(CacheEntry::EMPTY);
        self.epoch = epoch;
    }
}

/// The serialized global cache with the paper's "two-level locking scheme to
/// allow multiple readers" (§3.2) — a reader count plus a writer spin-lock.
/// This is the variant the paper found "was causing it to run much too
/// slowly" under contention; it exists for the ablation benchmark.
pub struct GlobalCache {
    readers: std::sync::atomic::AtomicI64,
    write_lock: mst_vkernel::SpinLock,
    entries: std::cell::UnsafeCell<Box<[CacheEntry; CACHE_SIZE]>>,
    /// GC epoch the entries are valid for.
    pub epoch: std::sync::atomic::AtomicU64,
}

// SAFETY: `entries` is only read while the reader count is held (blocking
// writers) and only written under the writer lock after readers drain.
unsafe impl Sync for GlobalCache {}
unsafe impl Send for GlobalCache {}

impl std::fmt::Debug for GlobalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GlobalCache").finish_non_exhaustive()
    }
}

impl GlobalCache {
    /// Creates an empty global cache.
    pub fn new(sync: mst_vkernel::SyncMode) -> GlobalCache {
        GlobalCache {
            readers: std::sync::atomic::AtomicI64::new(0),
            write_lock: mst_vkernel::SpinLock::named(sync, "method_cache"),
            entries: std::cell::UnsafeCell::new(Box::new([CacheEntry::EMPTY; CACHE_SIZE])),
            epoch: std::sync::atomic::AtomicU64::new(0),
        }
    }

    fn read_enter(&self) {
        use std::sync::atomic::Ordering;
        let mut iter = 0;
        loop {
            while self.write_lock.is_held() {
                mst_vkernel::delay(iter);
                iter += 1;
            }
            self.readers.fetch_add(1, Ordering::Acquire);
            if !self.write_lock.is_held() {
                return;
            }
            // A writer slipped in; back out and retry.
            self.readers.fetch_sub(1, Ordering::Release);
        }
    }

    fn read_exit(&self) {
        self.readers
            .fetch_sub(1, std::sync::atomic::Ordering::Release);
    }

    fn write_enter(&self) -> mst_vkernel::SpinGuard<'_> {
        use std::sync::atomic::Ordering;
        let guard = self.write_lock.acquire();
        let mut iter = 0;
        while self.readers.load(Ordering::Acquire) > 0 {
            mst_vkernel::delay(iter);
            iter += 1;
        }
        guard
    }

    /// Probes under the reader side of the two-level lock. Returns a miss
    /// if the cache's epoch does not match `epoch`.
    pub fn probe(&self, selector: Oop, class: Oop, epoch: u64) -> Option<CacheEntry> {
        use std::sync::atomic::Ordering;
        if self.epoch.load(Ordering::Relaxed) != epoch {
            return None;
        }
        self.read_enter();
        // SAFETY: readers exclude writers per the two-level protocol.
        let e = unsafe { (*self.entries.get())[cache_index(selector, class)] };
        self.read_exit();
        if e.selector == selector.raw() && e.class == class.raw() {
            Some(e)
        } else {
            None
        }
    }

    /// Inserts under the writer side, clearing first if the epoch moved on.
    pub fn insert(&self, entry: CacheEntry, epoch: u64) {
        use std::sync::atomic::Ordering;
        let _g = self.write_enter();
        // SAFETY: writer side is exclusive.
        let entries = unsafe { &mut *self.entries.get() };
        if self.epoch.load(Ordering::Relaxed) != epoch {
            entries.fill(CacheEntry::EMPTY);
            self.epoch.store(epoch, Ordering::Relaxed);
        }
        let idx = cache_index(Oop::from_raw(entry.selector), Oop::from_raw(entry.class));
        entries[idx] = entry;
    }

    /// Empties the cache (method installation, GC).
    pub fn clear(&self, epoch: u64) {
        let _g = self.write_enter();
        // SAFETY: writer side is exclusive.
        unsafe { (*self.entries.get()).fill(CacheEntry::EMPTY) };
        self.epoch
            .store(epoch, std::sync::atomic::Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sel: u64, class: u64, method: u64) -> CacheEntry {
        CacheEntry {
            selector: sel,
            class,
            method,
            ..CacheEntry::EMPTY
        }
    }

    #[test]
    fn probe_hits_after_insert() {
        let mut c = LocalCache::new(0);
        let sel = Oop::from_index(100);
        let class = Oop::from_index(200);
        assert!(c.probe(sel, class).is_none());
        c.insert(entry(sel.raw(), class.raw(), 42));
        assert_eq!(c.probe(sel, class).unwrap().method, 42);
        // A different class misses.
        assert!(c.probe(sel, Oop::from_index(300)).is_none());
    }

    #[test]
    fn clear_empties_and_stamps_epoch() {
        let mut c = LocalCache::new(0);
        let sel = Oop::from_index(10);
        let class = Oop::from_index(20);
        c.insert(entry(sel.raw(), class.raw(), 1));
        c.clear(7);
        assert_eq!(c.epoch, 7);
        assert!(c.probe(sel, class).is_none());
    }

    #[test]
    fn global_cache_probe_insert_and_epoch() {
        let g = GlobalCache::new(mst_vkernel::SyncMode::Multiprocessor);
        let sel = Oop::from_index(8);
        let class = Oop::from_index(16);
        assert!(g.probe(sel, class, 0).is_none());
        g.insert(entry(sel.raw(), class.raw(), 99), 0);
        assert_eq!(g.probe(sel, class, 0).unwrap().method, 99);
        // A different epoch invalidates.
        assert!(g.probe(sel, class, 1).is_none());
        g.insert(entry(sel.raw(), class.raw(), 100), 1);
        assert_eq!(g.probe(sel, class, 1).unwrap().method, 100);
        g.clear(2);
        assert!(g.probe(sel, class, 2).is_none());
    }

    #[test]
    fn global_cache_concurrent_readers_and_writers() {
        use std::sync::Arc;
        let g = Arc::new(GlobalCache::new(mst_vkernel::SyncMode::Multiprocessor));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let g = Arc::clone(&g);
            handles.push(std::thread::spawn(move || {
                for i in 0..2000u64 {
                    let sel = Oop::from_index(((t * 2000 + i) % 64 + 1) as usize * 2);
                    let class = Oop::from_index(4);
                    if i % 3 == 0 {
                        g.insert(entry(sel.raw(), class.raw(), sel.raw()), 0);
                    } else if let Some(e) = g.probe(sel, class, 0) {
                        // An entry must always be internally consistent.
                        assert_eq!(e.method, e.selector);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn index_is_in_range_and_spreads() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            let idx = cache_index(Oop::from_index(1000 + i * 8), Oop::from_index(5));
            assert!(idx < CACHE_SIZE);
            seen.insert(idx);
        }
        assert!(seen.len() > 32, "hash should spread selectors");
    }
}
