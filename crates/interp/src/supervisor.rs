//! The processor supervisor: fail-operational interpreter threads.
//!
//! The paper runs replicated interpreters on five Firefly processors and
//! assumes every one of them lives forever. A production-scale MS cannot:
//! a panic in one interpreter thread must not wedge the stop-the-world
//! rendezvous (PR 3's RAII participant guard already unregisters the dead
//! thread) and must not strand the Process it was running or the contexts
//! on its replicated free list.
//!
//! [`supervise`] is the worker-thread entry point. It runs the interpreter
//! under `catch_unwind`; when the interpreter panics, the supervisor
//! recovers ([`Interpreter::recover_after_panic`]: the claimed Process goes
//! back to ready-but-unclaimed, free contexts are donated to the shared
//! pool, counters are flushed) and then applies the configured
//! [`SupervisorPolicy`]:
//!
//! * **restart** — respawn the interpreter in place on the same virtual
//!   processor and keep going;
//! * **degrade** (default) — take the processor offline and continue on
//!   N−1 processors; when the *last* supervised processor degrades, a
//!   checkpoint snapshot is written to `MST_SUPERVISOR_CHECKPOINT` (if
//!   set) as the restart path;
//! * **panic** — rethrow, failing fast (for harnesses that want a crash).
//!
//! Every recovery emits `supervisor.*` telemetry counters and a
//! `supervisor.recover` trace span; processor health is queryable through
//! [`Vm::processor_roster`] / [`Vm::processors_online`].

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use mst_telemetry as tel;

use crate::interp::Interpreter;
use crate::scheduler;
use crate::vm::Vm;

/// What the supervisor does after recovering from an interpreter panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SupervisorPolicy {
    /// Respawn a replacement interpreter on the same virtual processor.
    Restart,
    /// Take the processor offline; the system continues on the survivors.
    #[default]
    Degrade,
    /// Rethrow the panic (fail fast).
    Panic,
}

impl std::str::FromStr for SupervisorPolicy {
    type Err = ();

    fn from_str(s: &str) -> Result<SupervisorPolicy, ()> {
        match s.trim().to_ascii_lowercase().as_str() {
            "restart" => Ok(SupervisorPolicy::Restart),
            "degrade" => Ok(SupervisorPolicy::Degrade),
            "panic" => Ok(SupervisorPolicy::Panic),
            _ => Err(()),
        }
    }
}

impl SupervisorPolicy {
    /// The policy from `MST_SUPERVISOR_POLICY` (`restart`|`degrade`|`panic`),
    /// defaulting to [`Degrade`](SupervisorPolicy::Degrade) when unset or
    /// unparsable.
    pub fn from_env() -> SupervisorPolicy {
        std::env::var("MST_SUPERVISOR_POLICY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_default()
    }
}

/// Best-effort text of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a supervised interpreter on virtual processor `processor` until
/// shutdown. This is the worker-thread body spawned by the system layer;
/// the main interpreter (processor 0) runs unsupervised on the caller's
/// thread and is never panic-injectable.
pub fn supervise(vm: Arc<Vm>, processor: usize, policy: SupervisorPolicy) {
    vm.roster_register(processor);
    // RAII timeline session: whatever state this processor dies in — panic
    // unwind, degrade, clean shutdown — the open interval is closed and the
    // per-state nanoseconds stay exact.
    let _session = tel::timeline::register(processor);
    let mut interp = Interpreter::new(Arc::clone(&vm));
    interp.set_panic_injectable(true);
    loop {
        let result = panic::catch_unwind(AssertUnwindSafe(|| interp.run(None)));
        let payload = match result {
            Ok(_) => {
                // Clean shutdown: the processor winds down without a fault.
                vm.roster_offline(processor, None);
                return;
            }
            Err(payload) => payload,
        };
        let fault = panic_message(payload.as_ref());
        tel::counter("supervisor.panics").incr();
        {
            let _span = tel::span("supervisor.recover", "supervisor");
            interp.recover_after_panic();
        }
        // The panic unwound past any state the interpreter was in; close
        // that interval now so the timeline never leaks a dead state.
        tel::timeline::transition(tel::ProcState::Idle);
        // The fault is recorded in the roster (`last_fault`), not in
        // `vm.error_log`: the error log drives `run_prepared`'s
        // did-this-doit-fail check, and a supervisor entry there would
        // turn an unrelated in-flight doit into a phantom runtime error.
        match policy {
            SupervisorPolicy::Panic => {
                tel::counter("supervisor.rethrown").incr();
                vm.roster_offline(processor, Some(fault));
                panic::resume_unwind(payload);
            }
            SupervisorPolicy::Restart => {
                tel::counter("supervisor.restarts").incr();
                vm.roster_restarted(processor, fault);
                // Respawn in place: a fresh interpreter identity on the
                // same processor, same thread.
                interp = Interpreter::new(Arc::clone(&vm));
                interp.set_panic_injectable(true);
            }
            SupervisorPolicy::Degrade => {
                tel::counter("supervisor.degraded").incr();
                vm.roster_offline(processor, Some(fault));
                if vm.processors_online() == 0 {
                    // Last supervised processor gone: checkpoint the image
                    // as the restart path before this thread exits. The
                    // main interpreter may still be running doits, so the
                    // world is stopped for the save.
                    checkpoint_if_configured(&vm);
                }
                return;
            }
        }
    }
}

/// Degrade-path last resort: when `MST_SUPERVISOR_CHECKPOINT` names a file,
/// stop the world, scavenge, and write a crash-consistent snapshot there.
fn checkpoint_if_configured(vm: &Vm) {
    let Ok(path) = std::env::var("MST_SUPERVISOR_CHECKPOINT") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let _span = tel::span("supervisor.checkpoint", "supervisor");
    let me = vm.rendezvous.participant();
    let guard = me.stop_world();
    vm.mem.scavenge(); // checkpoint with an empty eden
    vm.bump_cache_epoch();
    scheduler::set_active_process_slot(&vm.mem, vm.mem.nil());
    // One bounded retry: this is the image's last chance before the
    // process winds down, and transient I/O (ENOSPC races, interrupted
    // writes) is exactly what the temp+rename save can survive a second
    // attempt at. Failures are counted, not just buried in the error log.
    let mut result = vm.mem.save_snapshot_to_path(std::path::Path::new(&path));
    if let Err(first) = result {
        tel::counter("supervisor.checkpoint_failures").incr();
        vm.error_log
            .lock()
            .push(format!("supervisor: checkpoint to {path} failed: {first}"));
        result = vm.mem.save_snapshot_to_path(std::path::Path::new(&path));
    }
    match result {
        Ok(()) => {
            tel::counter("supervisor.checkpoints").incr();
        }
        Err(e) => {
            tel::counter("supervisor.checkpoint_failures").incr();
            vm.error_log.lock().push(format!(
                "supervisor: checkpoint retry to {path} failed: {e}"
            ));
        }
    }
    drop(guard);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_defaults() {
        assert_eq!("restart".parse(), Ok(SupervisorPolicy::Restart));
        assert_eq!("Degrade".parse(), Ok(SupervisorPolicy::Degrade));
        assert_eq!(" panic ".parse(), Ok(SupervisorPolicy::Panic));
        assert_eq!("bogus".parse::<SupervisorPolicy>(), Err(()));
        assert_eq!(SupervisorPolicy::default(), SupervisorPolicy::Degrade);
    }
}
