//! Numbered primitives.
//!
//! Primitive methods carry an index in their header (`<primitive: n>` in
//! source). The interpreter tries the primitive first; on failure the
//! method's Smalltalk body runs (the Smalltalk-80 failure-fallback protocol
//! the paper relies on for `thisProcess`/`canRun:` compatibility, §3.3).
//!
//! Convention: on entry the receiver is at `sp - nargs` with the arguments
//! above it; a successful primitive replaces that frame with the result. A
//! primitive must not disturb the stack before its last possible failure
//! point, so a failed allocation can restart the whole send after a GC.

use mst_objmem::layout::class::ClassFormat;
use mst_objmem::layout::{block_ctx, class as cls};
use mst_objmem::{MethodHeader, ObjFormat, Oop, So};
use mst_vkernel::io::{CombinationRule, DisplayCommand};

use crate::classes::compile_and_install;
use crate::dicts::method_dict_at;
use crate::interp::{Interpreter, PrimOutcome};
use crate::scheduler as sched;

/// Event codes for [`PrimOutcome::Event2`].
pub(crate) const EV_BLOCKED: u8 = 0;
pub(crate) const EV_YIELDED: u8 = 1;
pub(crate) const EV_TERMINATED: u8 = 2;

impl Interpreter {
    fn t(&self) -> Oop {
        self.vm().mem.specials().get(So::True)
    }

    fn f(&self) -> Oop {
        self.vm().mem.specials().get(So::False)
    }

    fn boolean(&self, v: bool) -> Oop {
        if v {
            self.t()
        } else {
            self.f()
        }
    }

    /// Completes a send: pops the frame, pushes the result.
    fn prim_done(&mut self, nargs: usize, result: Oop) -> PrimOutcome {
        self.set_sp(self.sp() - nargs);
        self.poke_top(result);
        PrimOutcome::Done
    }

    fn arg(&self, nargs: usize, i: usize) -> Oop {
        self.peek_at(self.sp() - nargs + 1 + i)
    }

    fn prim_receiver(&self, nargs: usize) -> Oop {
        self.peek_at(self.sp() - nargs)
    }

    pub(crate) fn dispatch_primitive(
        &mut self,
        index: u16,
        nargs: usize,
        pc0: usize,
    ) -> PrimOutcome {
        let mem = self.mem();
        let rcvr = self.prim_receiver(nargs);
        match index {
            // --- SmallInteger arithmetic (1..=16) --------------------------
            1..=15 => {
                let arg = self.arg(nargs, 0);
                if !rcvr.is_small_int() || !arg.is_small_int() {
                    return PrimOutcome::Fail;
                }
                match crate::interp::small_int_op(
                    mem,
                    index as usize - 1,
                    rcvr.as_small_int(),
                    arg.as_small_int(),
                ) {
                    Some(v) => self.prim_done(nargs, v),
                    None => PrimOutcome::Fail,
                }
            }
            16 => {
                // bitXor:
                let arg = self.arg(nargs, 0);
                if !rcvr.is_small_int() || !arg.is_small_int() {
                    return PrimOutcome::Fail;
                }
                match Oop::try_from_i64(rcvr.as_small_int() ^ arg.as_small_int()) {
                    Some(v) => self.prim_done(nargs, v),
                    None => PrimOutcome::Fail,
                }
            }
            18 => {
                // SmallInteger>>asFloat
                if !rcvr.is_small_int() {
                    return PrimOutcome::Fail;
                }
                match mem.alloc_float(self.token(), rcvr.as_small_int() as f64) {
                    Some(f) => self.prim_done(nargs, f),
                    None => PrimOutcome::NeedGc,
                }
            }
            // --- Float (40..=49) ------------------------------------------
            40..=46 => {
                let float_class = mem.specials().get(So::ClassFloat);
                if mem.class_of(rcvr) != float_class {
                    return PrimOutcome::Fail;
                }
                let arg = self.arg(nargs, 0);
                let b = if mem.class_of(arg) == float_class {
                    mem.float_value(arg)
                } else if arg.is_small_int() {
                    arg.as_small_int() as f64
                } else {
                    return PrimOutcome::Fail;
                };
                let a = mem.float_value(rcvr);
                let result = match index {
                    40 => a + b,
                    41 => a - b,
                    42 => return self.prim_done(nargs, self.boolean(a < b)),
                    43 => return self.prim_done(nargs, self.boolean(a > b)),
                    44 => return self.prim_done(nargs, self.boolean(a == b)),
                    45 => a * b,
                    _ => {
                        if b == 0.0 {
                            return PrimOutcome::Fail;
                        }
                        a / b
                    }
                };
                match mem.alloc_float(self.token(), result) {
                    Some(f) => self.prim_done(nargs, f),
                    None => PrimOutcome::NeedGc,
                }
            }
            47 => {
                // Float>>truncated
                if mem.class_of(rcvr) != mem.specials().get(So::ClassFloat) {
                    return PrimOutcome::Fail;
                }
                let v = mem.float_value(rcvr).trunc();
                match Oop::try_from_i64(v as i64) {
                    Some(o) if (v as i64) as f64 == v => self.prim_done(nargs, o),
                    _ => PrimOutcome::Fail,
                }
            }
            49 => {
                // Float>>printString (via Rust formatting)
                if mem.class_of(rcvr) != mem.specials().get(So::ClassFloat) {
                    return PrimOutcome::Fail;
                }
                let s = format!("{:?}", mem.float_value(rcvr));
                match mem.alloc_string(self.token(), &s) {
                    Some(o) => self.prim_done(nargs, o),
                    None => PrimOutcome::NeedGc,
                }
            }
            // --- Indexable access (60..=63) --------------------------------
            60 => self.prim_at(nargs),
            61 => self.prim_at_put(nargs),
            62 => self.prim_size(nargs),
            63 => {
                // SmallInteger>>asCharacter
                if !rcvr.is_small_int() {
                    return PrimOutcome::Fail;
                }
                let v = rcvr.as_small_int();
                if !(0..=255).contains(&v) {
                    return PrimOutcome::Fail;
                }
                let c = mem.char_oop(v as u8);
                self.prim_done(nargs, c)
            }
            // --- CompiledMethod reflection (66..=68) -----------------------
            66 => {
                // numArgs
                if mem.header(rcvr).format() != ObjFormat::Method {
                    return PrimOutcome::Fail;
                }
                let mh = MethodHeader::decode(mem.fetch(rcvr, 0));
                self.prim_done(nargs, Oop::from_small_int(mh.num_args as i64))
            }
            67 => {
                // numLiterals
                if mem.header(rcvr).format() != ObjFormat::Method {
                    return PrimOutcome::Fail;
                }
                let mh = MethodHeader::decode(mem.fetch(rcvr, 0));
                self.prim_done(nargs, Oop::from_small_int(mh.num_literals as i64))
            }
            68 => {
                // literalAt: (1-based)
                if mem.header(rcvr).format() != ObjFormat::Method {
                    return PrimOutcome::Fail;
                }
                let arg = self.arg(nargs, 0);
                let mh = MethodHeader::decode(mem.fetch(rcvr, 0));
                match arg.to_i64() {
                    Some(i) if (1..=mh.num_literals as i64).contains(&i) => {
                        let v = mem.fetch(rcvr, MethodHeader::literal_slot(i as usize - 1));
                        self.prim_done(nargs, v)
                    }
                    _ => PrimOutcome::Fail,
                }
            }
            // --- Instantiation & object access (70..=75) -------------------
            70 => {
                // new
                if !rcvr.is_object() {
                    return PrimOutcome::Fail;
                }
                match mem.instantiate(self.token(), rcvr, 0) {
                    Some(o) => self.prim_done(nargs, o),
                    None => PrimOutcome::NeedGc,
                }
            }
            71 => {
                // new:
                let arg = self.arg(nargs, 0);
                let Some(n) = arg.to_i64() else {
                    return PrimOutcome::Fail;
                };
                if n < 0 || !rcvr.is_object() {
                    return PrimOutcome::Fail;
                }
                let fmt = ClassFormat::decode(mem.fetch(rcvr, cls::FORMAT).as_small_int());
                if !fmt.indexable {
                    return PrimOutcome::Fail;
                }
                match mem.instantiate(self.token(), rcvr, n as usize) {
                    Some(o) => self.prim_done(nargs, o),
                    None => PrimOutcome::NeedGc,
                }
            }
            73 => {
                // instVarAt:
                let arg = self.arg(nargs, 0);
                if !rcvr.is_object() {
                    return PrimOutcome::Fail;
                }
                let h = mem.header(rcvr);
                match arg.to_i64() {
                    Some(i)
                        if h.format() == ObjFormat::Pointers
                            && (1..=h.body_words() as i64).contains(&i) =>
                    {
                        let v = mem.fetch(rcvr, i as usize - 1);
                        self.prim_done(nargs, v)
                    }
                    _ => PrimOutcome::Fail,
                }
            }
            74 => {
                // instVarAt:put:
                let idx = self.arg(nargs, 0);
                let val = self.arg(nargs, 1);
                if !rcvr.is_object() {
                    return PrimOutcome::Fail;
                }
                let h = mem.header(rcvr);
                match idx.to_i64() {
                    Some(i)
                        if h.format() == ObjFormat::Pointers
                            && (1..=h.body_words() as i64).contains(&i) =>
                    {
                        mem.store(rcvr, i as usize - 1, val);
                        self.prim_done(nargs, val)
                    }
                    _ => PrimOutcome::Fail,
                }
            }
            75 => {
                let h = mem.identity_hash(rcvr);
                self.prim_done(nargs, Oop::from_small_int(h))
            }
            // --- Blocks & perform (80..=84) --------------------------------
            80 => {
                let out = self.block_value(nargs);
                if matches!(out, PrimOutcome::Done) {
                    // block_value switched contexts itself.
                    PrimOutcome::Done
                } else {
                    out
                }
            }
            81 => self.prim_value_with_arguments(nargs),
            82 => self.prim_perform(nargs, pc0),
            84 => self.prim_perform_with_arguments(nargs, pc0),
            // --- Processes & semaphores (85..=93) --------------------------
            85 => {
                // Semaphore>>signal
                sched::semaphore_signal(self.vm_arc(), rcvr);
                self.prim_done(nargs, rcvr)
            }
            86 => {
                // Semaphore>>wait
                let me = self.current_process();
                self.prim_done(nargs, rcvr);
                match sched::semaphore_wait(self.vm_arc(), rcvr, me) {
                    sched::WaitOutcome::Acquired => PrimOutcome::Done,
                    sched::WaitOutcome::Blocked => {
                        self.flush_for_switch();
                        PrimOutcome::Event2(EV_BLOCKED)
                    }
                }
            }
            87 => {
                // Process>>resume
                sched::resume(self.vm_arc(), rcvr);
                self.prim_done(nargs, rcvr)
            }
            88 => {
                // Process>>suspend
                let me = self.current_process();
                if rcvr == me {
                    self.prim_done(nargs, rcvr);
                    sched::retire(self.vm_arc(), me);
                    self.flush_for_switch();
                    PrimOutcome::Event2(EV_BLOCKED)
                } else if sched::suspend_other(self.vm_arc(), rcvr) {
                    self.prim_done(nargs, rcvr)
                } else {
                    PrimOutcome::Fail
                }
            }
            89 => {
                // Processor yield (receiver ignored)
                self.prim_done(nargs, rcvr);
                self.flush_for_switch();
                PrimOutcome::Event2(EV_YIELDED)
            }
            90 => {
                // BlockContext>>newProcess
                if mem.class_of(rcvr) != mem.specials().get(So::ClassBlockContext) {
                    return PrimOutcome::Fail;
                }
                if mem.fetch(rcvr, block_ctx::NARGS).as_small_int() != 0 {
                    return PrimOutcome::Fail;
                }
                let body = mem.header(rcvr).body_words();
                let class = mem.specials().get(So::ClassBlockContext);
                let Some(fresh) = mem.allocate(self.token(), class, ObjFormat::Pointers, body, 0)
                else {
                    return PrimOutcome::NeedGc;
                };
                let initial = mem.fetch(rcvr, block_ctx::INITIAL_PC).as_small_int() as usize;
                let home = mem.fetch(rcvr, block_ctx::HOME);
                crate::contexts::reinit_block_ctx(mem, fresh, 0, initial, home);
                mem.store_nocheck(
                    fresh,
                    block_ctx::STACKP,
                    Oop::from_small_int(block_ctx::STACK_START as i64 - 1),
                );
                let name = mem.nil();
                let Some(p) =
                    sched::create_process(mem, self.token(), fresh, self.priority(), name)
                else {
                    return PrimOutcome::NeedGc;
                };
                // The home context now escapes through another process.
                let h = mem.header(home);
                mem.set_header(home, h.with_escaped());
                self.prim_done(nargs, p)
            }
            92 => {
                // thisProcess (the paper's reorganization, §3.3)
                let p = self.current_process();
                self.prim_done(nargs, p)
            }
            93 => {
                // canRun: aProcess
                let arg = self.arg(nargs, 0);
                if !arg.is_object() {
                    return PrimOutcome::Fail;
                }
                let b = self.boolean(sched::can_run(self.vm_arc(), arg));
                self.prim_done(nargs, b)
            }
            // --- System (99..) ---------------------------------------------
            99 => {
                // force a scavenge (tests, GC benchmarks)
                self.prim_done(nargs, rcvr);
                self.explicit_scavenge();
                PrimOutcome::Done
            }
            100 => {
                let ms = self.vm().start.elapsed().as_millis() as i64;
                self.prim_done(nargs, Oop::from_small_int(ms))
            }
            101 => self.prim_display_command(nargs),
            102 => {
                let ev = self.vm().input.next_event();
                let result = match ev {
                    Some(e) => Oop::from_small_int(e.code as i64),
                    None => mem.nil(),
                };
                self.prim_done(nargs, result)
            }
            103 => self.prim_compile(nargs),
            104 => self.prim_decompile(nargs),
            105 => {
                // primitive string equality
                let arg = self.arg(nargs, 0);
                if !rcvr.is_object()
                    || !arg.is_object()
                    || mem.header(rcvr).format() != ObjFormat::Bytes
                    || mem.header(arg).format() != ObjFormat::Bytes
                {
                    return PrimOutcome::Fail;
                }
                let eq = mem.bytes(rcvr) == mem.bytes(arg);
                let b = self.boolean(eq);
                self.prim_done(nargs, b)
            }
            107 => self.prim_replace(nargs),
            110 => {
                let arg = self.arg(nargs, 0);
                let b = self.boolean(rcvr == arg);
                self.prim_done(nargs, b)
            }
            111 => {
                let c = mem.class_of(rcvr);
                self.prim_done(nargs, c)
            }
            120 => {
                // String>>asSymbol
                if !rcvr.is_object() || mem.header(rcvr).format() != ObjFormat::Bytes {
                    return PrimOutcome::Fail;
                }
                let s = mem.str_value(rcvr);
                // Failure containment: old-space exhaustion fails the
                // primitive (the image sees primitiveFailed) instead of
                // aborting the VM.
                let Ok(sym) = mem.try_intern(&s) else {
                    return PrimOutcome::Fail;
                };
                self.prim_done(nargs, sym)
            }
            121 => {
                // Symbol>>asString
                if !rcvr.is_object() || mem.header(rcvr).format() != ObjFormat::Bytes {
                    return PrimOutcome::Fail;
                }
                let s = mem.str_value(rcvr);
                match mem.alloc_string(self.token(), &s) {
                    Some(o) => self.prim_done(nargs, o),
                    None => PrimOutcome::NeedGc,
                }
            }
            130 => {
                // error: — log and terminate the process.
                let arg = self.arg(nargs, 0);
                let msg = if arg.is_object() && mem.header(arg).format() == ObjFormat::Bytes {
                    mem.str_value(arg)
                } else {
                    format!("{arg:?}")
                };
                self.vm().error_log.lock().push(msg);
                self.set_last_value(arg);
                self.prim_done(nargs, rcvr);
                self.flush_for_switch();
                PrimOutcome::Event2(EV_TERMINATED)
            }
            132 => {
                // Transcript output
                let arg = self.arg(nargs, 0);
                if !arg.is_object() || mem.header(arg).format() != ObjFormat::Bytes {
                    return PrimOutcome::Fail;
                }
                let s = mem.str_value(arg);
                self.vm().transcript.lock().push_str(&s);
                self.prim_done(nargs, rcvr)
            }
            135 => {
                self.vm().display.flush();
                self.prim_done(nargs, rcvr)
            }
            138 => {
                // scavenge count (instrumentation)
                let n = self.vm().mem.gc_stats().scavenges as i64;
                self.prim_done(nargs, Oop::from_small_int(n))
            }
            _ => PrimOutcome::Fail,
        }
    }

    // ------------------------------------------------------------------
    // Indexable access helpers
    // ------------------------------------------------------------------

    fn indexable_info(&self, obj: Oop) -> Option<(ClassFormat, usize)> {
        let mem = self.mem();
        if !obj.is_object() {
            return None;
        }
        let class = mem.class_of(obj);
        if !class.is_object() {
            return None;
        }
        let fmt = ClassFormat::decode(mem.fetch(class, cls::FORMAT).as_small_int());
        if !fmt.indexable {
            return None;
        }
        let len = if fmt.bytes {
            mem.byte_len(obj)
        } else {
            mem.header(obj).body_words() - fmt.inst_size as usize
        };
        Some((fmt, len))
    }

    fn is_stringlike(&self, obj: Oop) -> bool {
        let mem = self.mem();
        let class = mem.class_of(obj);
        class == mem.specials().get(So::ClassString) || class == mem.specials().get(So::ClassSymbol)
    }

    fn prim_at(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let rcvr = self.prim_receiver(nargs);
        let Some(idx) = self.arg(nargs, 0).to_i64() else {
            return PrimOutcome::Fail;
        };
        let Some((fmt, len)) = self.indexable_info(rcvr) else {
            return PrimOutcome::Fail;
        };
        if idx < 1 || idx as usize > len {
            return PrimOutcome::Fail;
        }
        let i = idx as usize - 1;
        let v = if fmt.bytes {
            let b = mem.byte_at(rcvr, i);
            if self.is_stringlike(rcvr) {
                mem.char_oop(b)
            } else {
                Oop::from_small_int(b as i64)
            }
        } else {
            mem.fetch(rcvr, fmt.inst_size as usize + i)
        };
        self.prim_done(nargs, v)
    }

    fn prim_at_put(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let rcvr = self.prim_receiver(nargs);
        let Some(idx) = self.arg(nargs, 0).to_i64() else {
            return PrimOutcome::Fail;
        };
        let val = self.arg(nargs, 1);
        let Some((fmt, len)) = self.indexable_info(rcvr) else {
            return PrimOutcome::Fail;
        };
        if idx < 1 || idx as usize > len {
            return PrimOutcome::Fail;
        }
        let i = idx as usize - 1;
        if fmt.bytes {
            let byte = if self.is_stringlike(rcvr) {
                // Characters carry their code in instance variable 0.
                if mem.class_of(val) != mem.specials().get(So::ClassCharacter) {
                    return PrimOutcome::Fail;
                }
                mem.fetch(val, 0).as_small_int() as u8
            } else {
                match val.to_i64() {
                    Some(v) if (0..=255).contains(&v) => v as u8,
                    _ => return PrimOutcome::Fail,
                }
            };
            mem.byte_at_put(rcvr, i, byte);
        } else {
            mem.store(rcvr, fmt.inst_size as usize + i, val);
        }
        self.prim_done(nargs, val)
    }

    fn prim_size(&mut self, nargs: usize) -> PrimOutcome {
        let rcvr = self.prim_receiver(nargs);
        match self.indexable_info(rcvr) {
            Some((_, len)) => self.prim_done(nargs, Oop::from_small_int(len as i64)),
            None => PrimOutcome::Fail,
        }
    }

    fn prim_replace(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let rcvr = self.prim_receiver(nargs);
        let (Some(start), Some(stop), Some(rep_start)) = (
            self.arg(nargs, 0).to_i64(),
            self.arg(nargs, 1).to_i64(),
            self.arg(nargs, 3).to_i64(),
        ) else {
            return PrimOutcome::Fail;
        };
        let replacement = self.arg(nargs, 2);
        let (Some((dfmt, dlen)), Some((sfmt, slen))) =
            (self.indexable_info(rcvr), self.indexable_info(replacement))
        else {
            return PrimOutcome::Fail;
        };
        if dfmt.bytes != sfmt.bytes {
            return PrimOutcome::Fail;
        }
        if start < 1 || stop < start - 1 || stop as usize > dlen {
            return PrimOutcome::Fail;
        }
        let count = (stop - start + 1) as usize;
        if rep_start < 1 || (rep_start as usize + count).saturating_sub(1) > slen {
            return PrimOutcome::Fail;
        }
        let (d0, s0) = (start as usize - 1, rep_start as usize - 1);
        if dfmt.bytes {
            for i in 0..count {
                let b = mem.byte_at(replacement, s0 + i);
                mem.byte_at_put(rcvr, d0 + i, b);
            }
        } else {
            let dbase = dfmt.inst_size as usize;
            let sbase = sfmt.inst_size as usize;
            for i in 0..count {
                let v = mem.fetch(replacement, sbase + s0 + i);
                mem.store(rcvr, dbase + d0 + i, v);
            }
        }
        self.prim_done(nargs, rcvr)
    }

    // ------------------------------------------------------------------
    // perform: & valueWithArguments:
    // ------------------------------------------------------------------

    fn prim_value_with_arguments(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let array = self.arg(nargs, 0);
        if !array.is_object() || mem.header(array).format() != ObjFormat::Pointers {
            return PrimOutcome::Fail;
        }
        let n = mem.header(array).body_words();
        let rcvr = self.prim_receiver(nargs);
        if mem.class_of(rcvr) != mem.specials().get(So::ClassBlockContext)
            || mem.fetch(rcvr, block_ctx::NARGS).as_small_int() as usize != n
        {
            return PrimOutcome::Fail;
        }
        // Rewrite the frame [block, array] into [block, a0.. an-1] and
        // delegate to block_value. Restart-safe: block_value allocates
        // nothing.
        self.set_sp(self.sp() - 1); // drop the array (values copied below)
        for i in 0..n {
            let v = mem.fetch(array, i);
            self.push_raw(v);
        }
        self.block_value(n)
    }

    /// `perform:` and friends. See DESIGN.md: to keep the restart-on-GC
    /// protocol sound the primitive forces a scavenge up front when eden
    /// headroom is low, because it must shuffle the stack before the inner
    /// send (whose own allocations could otherwise demand a restart).
    fn prim_perform(&mut self, nargs: usize, pc0: usize) -> PrimOutcome {
        if nargs == 0 {
            return PrimOutcome::Fail;
        }
        let mem = self.mem();
        if mem.eden_headroom() < 64 << 10 {
            return PrimOutcome::NeedGc;
        }
        let selector = self.arg(nargs, 0);
        if !selector.is_object() || mem.class_of(selector) != mem.specials().get(So::ClassSymbol) {
            return PrimOutcome::Fail;
        }
        // Shift the remaining args down over the selector slot.
        let k = nargs - 1;
        let base = self.sp() - nargs + 1;
        for i in 0..k {
            let v = self.peek_at(base + 1 + i);
            self.poke_at(base + i, v);
        }
        self.set_sp(self.sp() - 1);
        self.send_for_prim(pc0, selector, k)
    }

    fn prim_perform_with_arguments(&mut self, nargs: usize, pc0: usize) -> PrimOutcome {
        if nargs != 2 {
            return PrimOutcome::Fail;
        }
        let mem = self.mem();
        if mem.eden_headroom() < 64 << 10 {
            return PrimOutcome::NeedGc;
        }
        let selector = self.arg(nargs, 0);
        let array = self.arg(nargs, 1);
        if !selector.is_object()
            || mem.class_of(selector) != mem.specials().get(So::ClassSymbol)
            || !array.is_object()
            || mem.header(array).format() != ObjFormat::Pointers
        {
            return PrimOutcome::Fail;
        }
        let n = mem.header(array).body_words();
        // [rcvr, sel, array] → [rcvr, a0..an-1]
        self.set_sp(self.sp() - 2);
        for i in 0..n {
            let v = mem.fetch(array, i);
            self.push_raw(v);
        }
        self.send_for_prim(pc0, selector, n)
    }

    // ------------------------------------------------------------------
    // Devices & tools
    // ------------------------------------------------------------------

    fn prim_display_command(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let arg = self.arg(nargs, 0);
        if !arg.is_object() || mem.header(arg).format() != ObjFormat::Pointers {
            return PrimOutcome::Fail;
        }
        let n = mem.header(arg).body_words();
        let mut vals = [0i64; 8];
        for (i, v) in vals.iter_mut().enumerate().take(n.min(8)) {
            match mem.fetch(arg, i).to_i64() {
                Some(x) => *v = x,
                None => return PrimOutcome::Fail,
            }
        }
        let rule = |r: i64| match r {
            1 => CombinationRule::And,
            2 => CombinationRule::Paint,
            3 => CombinationRule::Reverse,
            4 => CombinationRule::Erase,
            _ => CombinationRule::Over,
        };
        let cmd = match vals[0] {
            0 => DisplayCommand::Clear,
            1 => DisplayCommand::Plot {
                x: vals[1] as u16,
                y: vals[2] as u16,
                on: vals[3] != 0,
            },
            2 => DisplayCommand::FillRect {
                x: vals[1] as u16,
                y: vals[2] as u16,
                w: vals[3] as u16,
                h: vals[4] as u16,
                rule: rule(vals[5]),
            },
            3 => DisplayCommand::CopyRect {
                sx: vals[1] as u16,
                sy: vals[2] as u16,
                dx: vals[3] as u16,
                dy: vals[4] as u16,
                w: vals[5] as u16,
                h: vals[6] as u16,
                rule: rule(vals[7]),
            },
            _ => return PrimOutcome::Fail,
        };
        self.vm().display.post(cmd);
        let rcvr = self.prim_receiver(nargs);
        self.prim_done(nargs, rcvr)
    }

    fn prim_compile(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        if nargs != 1 {
            return PrimOutcome::Fail;
        }
        let class_oop = self.prim_receiver(nargs);
        let src_oop = self.arg(nargs, 0);
        if !src_oop.is_object()
            || mem.header(src_oop).format() != ObjFormat::Bytes
            || !class_oop.is_object()
        {
            return PrimOutcome::Fail;
        }
        let source = mem.str_value(src_oop);
        match compile_and_install(mem, class_oop, "as yet unclassified", &source) {
            Ok(_method) => {
                // Installing a method invalidates every cache.
                self.invalidate_caches_after_install();
                let Ok(selector) = mem.try_intern(
                    &mst_compiler::parse_method(&source)
                        .map(|m| m.selector)
                        .unwrap_or_default(),
                ) else {
                    return PrimOutcome::Fail;
                };
                self.prim_done(nargs, selector)
            }
            Err(_) => {
                let nil = mem.nil();
                self.prim_done(nargs, nil)
            }
        }
    }

    fn prim_decompile(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        if nargs != 1 {
            return PrimOutcome::Fail;
        }
        let class_oop = self.prim_receiver(nargs);
        let sel_oop = self.arg(nargs, 0);
        if !sel_oop.is_object() || !class_oop.is_object() {
            return PrimOutcome::Fail;
        }
        let dict = mem.fetch(class_oop, cls::METHOD_DICT);
        let Some(method) = method_dict_at(mem, dict, sel_oop) else {
            return PrimOutcome::Fail;
        };
        let mh = MethodHeader::decode(mem.fetch(method, 0));
        // Reconstruct the literal frame in compiler-neutral form.
        let mut literals = Vec::with_capacity(mh.num_literals as usize);
        for i in 0..mh.num_literals as usize {
            let lit = mem.fetch(method, MethodHeader::literal_slot(i));
            literals.push(self.literal_to_spec(lit));
        }
        let ivars = crate::install::all_instance_var_names(mem, class_oop);
        let selector = mem.str_value(sel_oop);
        let source = match mst_compiler::decompile(
            &selector,
            mh.num_args,
            mh.num_temps,
            mh.primitive,
            &literals,
            mem.method_bytecodes(method),
            &ivars,
        ) {
            Ok(node) => mst_compiler::print_method(&node),
            Err(_) => return PrimOutcome::Fail,
        };
        match mem.alloc_string(self.token(), &source) {
            Some(o) => self.prim_done(nargs, o),
            None => PrimOutcome::NeedGc,
        }
    }

    /// Converts a heap literal back to the compiler-neutral form (for the
    /// decompiler). Globals' Associations become `GlobalBinding`s.
    fn literal_to_spec(&self, lit: Oop) -> mst_compiler::LitEntry {
        use mst_compiler::ast::Literal;
        use mst_compiler::LitEntry;
        let mem = self.mem();
        if lit.is_small_int() {
            return LitEntry::Value(Literal::Int(lit.as_small_int()));
        }
        let sp = mem.specials();
        if lit == sp.get(So::True) {
            return LitEntry::Value(Literal::True);
        }
        if lit == sp.get(So::False) {
            return LitEntry::Value(Literal::False);
        }
        if lit == mem.nil() {
            return LitEntry::Value(Literal::Nil);
        }
        let class = mem.class_of(lit);
        if class == sp.get(So::ClassSymbol) {
            LitEntry::Value(Literal::Symbol(mem.str_value(lit)))
        } else if class == sp.get(So::ClassString) {
            LitEntry::Value(Literal::Str(mem.str_value(lit)))
        } else if class == sp.get(So::ClassFloat) {
            LitEntry::Value(Literal::Float(mem.float_value(lit)))
        } else if class == sp.get(So::ClassCharacter) {
            LitEntry::Value(Literal::Char(mem.fetch(lit, 0).as_small_int() as u8))
        } else if class == sp.get(So::ClassByteArray) {
            LitEntry::Value(Literal::ByteArray(mem.bytes(lit).to_vec()))
        } else if class == sp.get(So::ClassAssociation) {
            let key = mem.fetch(lit, mst_objmem::layout::assoc::KEY);
            LitEntry::GlobalBinding(mem.str_value(key))
        } else if class == sp.get(So::ClassArray) {
            let items = (0..mem.header(lit).body_words())
                .map(|i| match self.literal_to_spec(mem.fetch(lit, i)) {
                    LitEntry::Value(v) => v,
                    _ => Literal::Nil,
                })
                .collect();
            LitEntry::Value(Literal::Array(items))
        } else {
            // A class literal (super-send method-class slot).
            LitEntry::MethodClass
        }
    }
}
