//! The replicated bytecode interpreter.
//!
//! "In the case of an interpreter, we obtain parallelism by replicating the
//! interpreter itself" (paper §3.2). One [`Interpreter`] runs per virtual
//! processor, each an OS thread sharing the [`Vm`]. An interpreter claims a
//! ready Smalltalk Process from the single scheduler queue, executes its
//! bytecodes, and reaches a *safepoint* every few bytecodes (and at every
//! send) where it polls the stop-the-world flag, the shutdown flag, and the
//! preemption hint.
//!
//! Garbage collection protocol: any interpreter whose allocation fails
//! flushes its registers into the heap (contexts carry pc/sp; the running
//! Process carries the context), stops the world, scavenges, and resumes.
//! All interpreter-held oops are re-derived from the Process root after any
//! collection.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use mst_objmem::layout::{block_ctx, class as cls, ctx_size, message, method_ctx, process};
use mst_objmem::{AllocToken, MethodHeader, ObjFormat, ObjectMemory, Oop, RootHandle, So};
use mst_telemetry as tel;

use crate::cache::{CacheEntry, LocalCache};
use crate::contexts::{reinit_block_ctx, reinit_method_ctx, CtxKind, FreeLists};
use crate::dicts::method_dict_at;
use crate::scheduler as sched;
use crate::vm::{CachePolicy, FreeListPolicy, Vm};

/// Why `run` returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The watched process terminated; its result is in the Process's
    /// `result` slot ([`mst_objmem::layout::process::RESULT`]).
    WatchedTerminated,
    /// The VM was shut down.
    Shutdown,
}

/// Internal event ending the execution of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Bottom context returned; payload is on `last_value`.
    Terminated,
    /// The process blocked (semaphore wait or suspend) — already dequeued.
    Blocked,
    /// The process yielded or was preempted — still ready, unclaimed.
    Yielded,
    /// Shutdown requested.
    Shutdown,
}

/// Result of executing one bytecode step (or a primitive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Step {
    Continue,
    /// Allocation failed; restart the current bytecode after a scavenge.
    NeedGc,
    Event(Event),
}

/// Outcome of a primitive attempt.
pub(crate) enum PrimOutcome {
    /// Send completed; result on the stack.
    Done,
    /// Primitive failed; fall into the method body.
    Fail,
    /// Allocation failed.
    NeedGc,
    /// The send completed *and* ended this process's turn.
    Event2(u8),
}

/// One interpreter (one virtual processor's worth of execution).
pub struct Interpreter {
    vm: Arc<Vm>,
    /// Interpreter id (diagnostics).
    pub id: u64,
    token: AllocToken,
    cache: LocalCache,
    /// Replicated free-context lists (paper §3.2). `Arc`-wrapped so a
    /// pre-full-GC hook can sever the chains from whichever thread triggers
    /// the collection (the owner is parked at a safepoint then, so the lock
    /// is uncontended in ordinary execution).
    free: Arc<mst_vkernel::SpinMutex<FreeLists>>,
    special_sels: [Oop; 32],
    sels_epoch: u64,
    /// Rooted current process.
    proc_root: RootHandle,
    /// Process whose termination ends this `run` call (see [`run`]).
    ///
    /// [`run`]: Interpreter::run
    watched: Option<RootHandle>,
    /// Rendezvous identity while inside [`run`] (None outside it).
    ///
    /// [`run`]: Interpreter::run
    rdv_id: Option<mst_vkernel::ParticipantId>,
    /// Consecutive `NeedGc` steps with no completed bytecode in between;
    /// used to turn a futile scavenge loop into an out-of-memory event.
    gc_streak: u32,
    /// Whether the `thread.panic` chaos site may kill this interpreter at a
    /// safepoint. Only the processor supervisor sets it (workers only);
    /// the main interpreter drives doits and must never be killed.
    panic_injectable: bool,
    // --- registers of the active context ---
    ctx: Oop,
    receiver: Oop,
    method: Oop,
    ptr_slots: usize,
    is_block: bool,
    home: Oop,
    pc: usize,
    sp: usize,
    priority: i64,
    counter: u32,
    // --- batched counters ---
    n_bytecodes: u64,
    n_sends: u64,
    n_hits: u64,
    n_misses: u64,
    n_prims: u64,
    n_recycled: u64,
    n_ctx_alloc: u64,
    n_switches: u64,
    /// Value produced by the last terminated process.
    last_value: Oop,
}

impl Interpreter {
    /// Creates an interpreter bound to the VM.
    pub fn new(vm: Arc<Vm>) -> Interpreter {
        let id = vm.next_interp_id.fetch_add(1, Ordering::Relaxed);
        let token = vm.mem.new_token();
        let epoch = vm.mem.gc_epoch();
        let proc_root = vm.mem.new_root(Oop::ZERO);
        let free = Arc::new(mst_vkernel::SpinMutex::new(
            vm.options.sync,
            FreeLists::default(),
        ));
        // Sever this interpreter's recycling chains before any full
        // collection (scavenge-triggered ones included) so recycled-but-
        // chained contexts cannot be retained by a stale reference. Weak:
        // the hook prunes itself once the interpreter is dropped.
        let weak = Arc::downgrade(&free);
        vm.mem
            .register_pre_fullgc_hook(move |m| match weak.upgrade() {
                Some(lists) => {
                    lists.lock().sever(m);
                    true
                }
                None => false,
            });
        let mut it = Interpreter {
            vm,
            id,
            token,
            cache: LocalCache::new(epoch),
            free,
            special_sels: [Oop::ZERO; 32],
            sels_epoch: u64::MAX,
            proc_root,
            watched: None,
            rdv_id: None,
            gc_streak: 0,
            panic_injectable: false,
            ctx: Oop::ZERO,
            receiver: Oop::ZERO,
            method: Oop::ZERO,
            ptr_slots: 0,
            is_block: false,
            home: Oop::ZERO,
            pc: 0,
            sp: 0,
            priority: 0,
            counter: 0,
            n_bytecodes: 0,
            n_sends: 0,
            n_hits: 0,
            n_misses: 0,
            n_prims: 0,
            n_recycled: 0,
            n_ctx_alloc: 0,
            n_switches: 0,
            last_value: Oop::ZERO,
        };
        it.refresh_special_selectors();
        it
    }

    /// The object memory, with a lifetime detached from `&self` so hot
    /// paths can read registers and mutate `self` while holding it.
    ///
    /// SAFETY: the `Arc<Vm>` in `self` keeps the memory alive for the
    /// interpreter's entire lifetime; callers never store the reference.
    #[inline]
    pub(crate) fn mem<'a>(&self) -> &'a ObjectMemory {
        unsafe { &(*Arc::as_ptr(&self.vm)).mem }
    }

    /// The rendezvous, with a lifetime detached from `&self` so [`run`] can
    /// hold a [`mst_vkernel::Participant`] guard across `&mut self` calls.
    ///
    /// SAFETY: as for [`Interpreter::mem`] — the `Arc<Vm>` keeps the
    /// rendezvous alive for the interpreter's entire lifetime.
    ///
    /// [`run`]: Interpreter::run
    #[inline]
    fn rdv<'a>(&self) -> &'a mst_vkernel::Rendezvous {
        unsafe { &(*Arc::as_ptr(&self.vm)).rendezvous }
    }

    /// This interpreter's rendezvous id. Only valid inside [`run`].
    ///
    /// [`run`]: Interpreter::run
    #[inline]
    fn rdv_id(&self) -> mst_vkernel::ParticipantId {
        self.rdv_id
            .expect("rendezvous use outside Interpreter::run")
    }

    /// The shared VM.
    #[inline]
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    #[inline]
    pub(crate) fn vm_arc(&self) -> &Vm {
        &self.vm
    }

    #[inline]
    pub(crate) fn token(&self) -> &AllocToken {
        &self.token
    }

    #[inline]
    pub(crate) fn sp(&self) -> usize {
        self.sp
    }

    #[inline]
    pub(crate) fn set_sp(&mut self, sp: usize) {
        self.sp = sp;
    }

    #[inline]
    pub(crate) fn peek_at(&self, slot: usize) -> Oop {
        self.stack_at(slot)
    }

    #[inline]
    pub(crate) fn poke_at(&mut self, slot: usize, v: Oop) {
        self.stack_at_put(slot, v);
    }

    #[inline]
    pub(crate) fn poke_top(&mut self, v: Oop) {
        let sp = self.sp;
        self.stack_at_put(sp, v);
    }

    #[inline]
    pub(crate) fn push_raw(&mut self, v: Oop) {
        self.push(v);
    }

    #[inline]
    pub(crate) fn current_process(&self) -> Oop {
        self.proc_root.get()
    }

    #[inline]
    pub(crate) fn priority(&self) -> i64 {
        self.priority
    }

    pub(crate) fn set_last_value(&mut self, v: Oop) {
        self.last_value = v;
    }

    /// Flushes registers before a process switch (primitives 86/88/89/130).
    pub(crate) fn flush_for_switch(&mut self) {
        self.flush_registers();
    }

    /// Primitive 99: a deliberate scavenge. The send has already completed,
    /// so registers are flushed, the world stopped and everything reloaded.
    pub(crate) fn explicit_scavenge(&mut self) {
        self.flush_registers();
        if let Err(e) = self.scavenge_world() {
            // The send has already completed, so there is no bytecode to
            // restart: report, raise the low-space signal, and carry on —
            // the image decides how to shed load.
            self.vm.error_log.lock().push(format!("outOfMemory: {e}"));
            sched::signal_low_space(&self.vm);
        }
        self.after_gc();
    }

    /// Method installation invalidates every cache in the system.
    pub(crate) fn invalidate_caches_after_install(&mut self) {
        self.vm.bump_cache_epoch();
        self.vm.global_cache.clear(self.vm.cache_epoch());
        self.cache.clear(self.vm.cache_epoch());
    }

    /// Runs a send on behalf of a primitive (perform:). See the caveat on
    /// restartability at the call sites.
    pub(crate) fn send_for_prim(&mut self, pc0: usize, selector: Oop, nargs: usize) -> PrimOutcome {
        match self.send(pc0, selector, nargs, false) {
            Step::Continue => PrimOutcome::Done,
            Step::NeedGc => PrimOutcome::NeedGc,
            Step::Event(Event::Blocked) => PrimOutcome::Event2(0),
            Step::Event(Event::Yielded) => PrimOutcome::Event2(1),
            Step::Event(Event::Terminated) => PrimOutcome::Event2(2),
            Step::Event(Event::Shutdown) => PrimOutcome::Event2(1),
        }
    }

    fn refresh_special_selectors(&mut self) {
        let epoch = self.mem().gc_epoch();
        for (i, (sel, _)) in mst_compiler::bytecode::SPECIAL_SELECTORS.iter().enumerate() {
            // All of these exist from bootstrap, so a refresh is a pure
            // table lookup; `try_intern` only allocates (and can only run
            // out of memory) for a symbol nobody has interned yet. Keep
            // the stale oop in that case — it is still a valid symbol.
            if let Ok(sym) = self.mem().try_intern(sel) {
                self.special_sels[i] = sym;
            }
        }
        self.sels_epoch = epoch;
    }

    // ------------------------------------------------------------------
    // Running processes
    // ------------------------------------------------------------------

    /// Scheduler loop: claim ready Processes and run them until shutdown —
    /// or, when `watched` is given, until that process terminates. Returns
    /// the outcome; a watched process's result lands in the Process's
    /// `result` slot.
    ///
    /// The watched process is passed as a [`RootHandle`] so the reference
    /// stays valid across collections that happen before this interpreter
    /// joins the rendezvous.
    pub fn run(&mut self, watched: Option<RootHandle>) -> RunOutcome {
        self.watched = watched;
        // RAII registration: if this thread panics mid-run, the guard's
        // Drop unregisters us so surviving interpreters can still reach a
        // rendezvous instead of waiting forever on a dead participant.
        let participant = self.rdv().participant();
        self.rdv_id = Some(participant.id());
        let outcome = loop {
            if !self.vm.running() {
                break RunOutcome::Shutdown;
            }
            // The watched process may have been claimed and finished by a
            // *worker* interpreter (any interpreter runs any ready Process).
            if let Some(w) = &self.watched {
                if self.watched_done(w) {
                    break RunOutcome::WatchedTerminated;
                }
            }
            // Prefer the watched (reserved) process; workers skip it.
            let claimed = match &self.watched {
                Some(w) => {
                    let wp = w.get();
                    if sched::claim_reserved(&self.vm, wp) {
                        Some(wp)
                    } else {
                        sched::claim_next(&self.vm)
                    }
                }
                None => sched::claim_next(&self.vm),
            };
            match claimed {
                Some(p) => {
                    tel::timeline::transition(tel::ProcState::Mutator);
                    self.n_switches += 1;
                    self.load_process(p);
                    let ev = self.execute();
                    let finished = self.unload_process(ev);
                    if finished {
                        break RunOutcome::WatchedTerminated;
                    }
                    if ev == Event::Shutdown {
                        break RunOutcome::Shutdown;
                    }
                }
                None => {
                    // Idle: no claimable process. Keep polling the GC flag —
                    // parked idle interpreters must not block a scavenge.
                    tel::timeline::transition(tel::ProcState::Idle);
                    if self.vm.rendezvous.poll() {
                        self.mem().retire_token(&self.token);
                        self.vm.rendezvous.park(participant.id());
                    }
                    mst_vkernel::delay(24);
                }
            }
        };
        tel::timeline::transition(tel::ProcState::Idle);
        self.watched = None;
        self.flush_counters();
        self.rdv_id = None;
        drop(participant);
        outcome
    }

    /// Allows the `thread.panic` chaos site to kill this interpreter at a
    /// safepoint. Set only by the processor supervisor on worker
    /// interpreters; the main interpreter must never be injectable.
    pub fn set_panic_injectable(&mut self, on: bool) {
        self.panic_injectable = on;
    }

    /// Puts the interpreter back into a runnable state after its `run`
    /// unwound from a panic. Called by the processor supervisor with the
    /// thread already *outside* the rendezvous (the participant guard
    /// unregistered during the unwind).
    ///
    /// Re-enters the heap as an ordinary mutator — registered, parking
    /// first if a stop is in flight. That is enough to exclude a
    /// concurrent scavenge for the few fetches below, and unlike taking
    /// a full `stop_world` it cannot starve behind the steady GC traffic
    /// of the surviving interpreters (the dead processor's Process would
    /// stay claimed, and so unrunnable, for as long as the recovery
    /// waits). Then:
    /// * releases the claimed Process, if any, back to ready-but-unclaimed
    ///   so a surviving interpreter picks it up — the panic injection site
    ///   flushed its registers, so it resumes at a bytecode boundary;
    /// * donates this interpreter's free-context lists to the shared pool
    ///   (they are epoch-checked: stale lists are dropped instead);
    /// * flushes the batched telemetry counters so no executed work is
    ///   lost from the Table 2 accounting.
    pub fn recover_after_panic(&mut self) {
        self.watched = None;
        self.rdv_id = None;
        let rdv = self.rdv();
        let me = rdv.participant();
        // A scavenge may be mid-flight from before we registered: park
        // until it releases, *before* touching the heap. After this, any
        // new stopper must wait for us to unregister (`me` drops below).
        if rdv.poll() {
            me.park();
        }
        let p = self.proc_root.get();
        if p != Oop::ZERO {
            sched::unclaim(&self.vm, p);
            self.proc_root.set(Oop::ZERO);
        }
        let epoch = self.mem().gc_epoch();
        {
            let mut mine = self.free.lock();
            if mine.epoch == epoch && !mine.is_empty() {
                let mut shared = self.vm.shared_free.lock();
                if shared.epoch == epoch {
                    shared.absorb(self.mem(), &mut mine);
                }
            }
            mine.clear(epoch);
        }
        drop(me);
        self.flush_counters();
        self.gc_streak = 0;
    }

    fn watched_done(&self, w: &RootHandle) -> bool {
        // The watched process is done when it is running nowhere and on no
        // list with a nil suspended context (terminated marker).
        let mem = self.mem();
        let p = w.get();
        mem.fetch(p, process::SUSPENDED_CONTEXT) == mem.nil()
    }

    fn load_process(&mut self, p: Oop) {
        self.proc_root.set(p);
        self.priority = self.mem().fetch(p, process::PRIORITY).as_small_int();
        let ctx = self.mem().fetch(p, process::SUSPENDED_CONTEXT);
        self.load_ctx(ctx);
        self.counter = self.vm.options.quantum;
        self.gc_streak = 0;
    }

    /// Handles the end of a process's turn; returns whether the watched
    /// process terminated.
    fn unload_process(&mut self, ev: Event) -> bool {
        let p = self.proc_root.get();
        let finished = match ev {
            Event::Terminated => {
                sched::retire(&self.vm, p);
                // Stash the result in the Process itself (so any watcher —
                // possibly on another interpreter — can read it), then mark
                // termination with a nil suspended context.
                let v = self.last_value;
                self.mem().store(p, process::RESULT, v);
                let nil = self.mem().nil();
                self.mem().store(p, process::SUSPENDED_CONTEXT, nil);
                self.watched.as_ref().is_some_and(|w| w.get() == p)
            }
            Event::Blocked => false, // already off the ready queue
            Event::Yielded => {
                sched::unclaim(&self.vm, p);
                false
            }
            Event::Shutdown => {
                self.flush_registers();
                sched::unclaim(&self.vm, p);
                false
            }
        };
        // Drop the claim reference: the process may be claimed by another
        // interpreter the moment it is unclaimed above, and a stale root
        // here would make panic recovery unclaim it out from under that
        // interpreter (double execution).
        self.proc_root.set(Oop::ZERO);
        finished
    }

    // ------------------------------------------------------------------
    // Register file <-> heap
    // ------------------------------------------------------------------

    fn load_ctx(&mut self, ctx: Oop) {
        let mem = self.mem();
        self.ctx = ctx;
        self.is_block = mem.class_of(ctx) == mem.specials().get(So::ClassBlockContext);
        self.home = if self.is_block {
            mem.fetch(ctx, block_ctx::HOME)
        } else {
            ctx
        };
        self.receiver = mem.fetch(self.home, method_ctx::RECEIVER);
        self.method = mem.fetch(self.home, method_ctx::METHOD);
        self.ptr_slots = MethodHeader::decode(mem.fetch(self.method, 0)).pointer_slots();
        self.pc = mem.fetch(ctx, method_ctx::PC).as_small_int() as usize;
        self.sp = mem.fetch(ctx, method_ctx::STACKP).as_small_int() as usize;
    }

    fn flush_registers(&mut self) {
        let mem = self.mem();
        mem.store_nocheck(
            self.ctx,
            method_ctx::PC,
            Oop::from_small_int(self.pc as i64),
        );
        mem.store_nocheck(
            self.ctx,
            method_ctx::STACKP,
            Oop::from_small_int(self.sp as i64),
        );
        let p = self.proc_root.get();
        mem.store(p, process::SUSPENDED_CONTEXT, self.ctx);
    }

    fn reload_registers(&mut self) {
        let p = self.proc_root.get();
        let ctx = self.mem().fetch(p, process::SUSPENDED_CONTEXT);
        self.load_ctx(ctx);
    }

    fn flush_counters(&mut self) {
        let c = &self.vm.counters;
        c.bytecodes.add(self.n_bytecodes);
        c.sends.add(self.n_sends);
        c.cache_hits.add(self.n_hits);
        c.cache_misses.add(self.n_misses);
        c.primitives.add(self.n_prims);
        c.contexts_recycled.add(self.n_recycled);
        c.contexts_allocated.add(self.n_ctx_alloc);
        c.process_switches.add(self.n_switches);
        self.n_bytecodes = 0;
        self.n_sends = 0;
        self.n_hits = 0;
        self.n_misses = 0;
        self.n_prims = 0;
        self.n_recycled = 0;
        self.n_ctx_alloc = 0;
        self.n_switches = 0;
    }

    // ------------------------------------------------------------------
    // Stack access
    // ------------------------------------------------------------------

    #[inline]
    fn push(&mut self, v: Oop) {
        self.sp += 1;
        self.mem().store(self.ctx, self.sp, v);
    }

    #[inline]
    fn pop(&mut self) -> Oop {
        let v = self.mem().fetch(self.ctx, self.sp);
        self.sp -= 1;
        v
    }

    #[inline]
    fn top(&self) -> Oop {
        self.mem().fetch(self.ctx, self.sp)
    }

    #[inline]
    fn stack_at(&self, slot: usize) -> Oop {
        self.mem().fetch(self.ctx, slot)
    }

    #[inline]
    fn stack_at_put(&mut self, slot: usize, v: Oop) {
        self.mem().store(self.ctx, slot, v);
    }

    #[inline]
    fn temp(&self, n: usize) -> Oop {
        self.mem().fetch(self.home, method_ctx::STACK_START + n)
    }

    #[inline]
    fn temp_put(&mut self, n: usize, v: Oop) {
        self.mem().store(self.home, method_ctx::STACK_START + n, v);
    }

    #[inline]
    fn literal(&self, n: usize) -> Oop {
        self.mem().fetch(self.method, MethodHeader::literal_slot(n))
    }

    #[inline]
    fn fetch_byte(&mut self) -> u8 {
        let b = self.mem().method_byte(self.method, self.ptr_slots, self.pc);
        self.pc += 1;
        b
    }

    // ------------------------------------------------------------------
    // GC & safepoints
    // ------------------------------------------------------------------

    /// A scavenge is futile when this many consecutive `NeedGc` steps hit
    /// without a single bytecode completing in between: collection freed
    /// nothing the failing allocation can use, so another one won't either.
    const FUTILE_GC_LIMIT: u32 = 3;

    /// Handles a `NeedGc` step: scavenge and restart the bytecode at `pc0`,
    /// or — when memory is truly exhausted — terminate the current process
    /// with an `outOfMemory` report instead of looping forever.
    fn gc_scavenge(&mut self, pc0: usize) -> Step {
        self.pc = pc0;
        self.flush_registers();
        // An allocation-bound doit can burn its whole budget between
        // safepoints in scavenge-and-retry cycles; check the deadline here
        // too so expiry costs at most one collection, not a quantum of them.
        if self.watching_claimed() {
            let deadline = self.vm.deadline_ns.load(Ordering::Relaxed);
            if deadline != 0 && tel::now_ns() >= deadline {
                return self.deadline_expired();
            }
        }
        if self.gc_streak > Self::FUTILE_GC_LIMIT {
            // Repeated scavenges made no progress (e.g. a large tenured
            // request against a full old generation).
            return self.out_of_memory();
        }
        match self.scavenge_world() {
            Ok(()) => {
                self.after_gc();
                Step::Continue
            }
            Err(_) => self.out_of_memory(),
        }
    }

    /// Stops the world and scavenges, unless another interpreter beat us to
    /// it. `Err` means the old generation cannot absorb the survivors; the
    /// heap is left untouched in that case so execution can continue.
    fn scavenge_world(&mut self) -> Result<(), mst_objmem::OomError> {
        let before = self.mem().gc_epoch();
        // Exact accounting: hand the unused tail of our allocation buffer
        // back before the collection sizes its tenure reserve.
        self.mem().retire_token(&self.token);
        let guard = self.vm.rendezvous.stop_world(self.rdv_id());
        let mut result = Ok(());
        if self.mem().gc_epoch() == before {
            // Nobody beat us to it: collect.
            *self.vm.shared_free.lock() = FreeLists::default();
            let helpers = self.mem().config().gc_helpers;
            let scavenged = if helpers > 1 {
                // Donate the stopped interpreters: they run the scavenge
                // closure from inside their parks (paper §5 future work —
                // "the stopped processors could help with the collection").
                self.mem().try_scavenge_parallel(helpers, |n, f| {
                    guard.run_stopped(n, f);
                })
            } else {
                self.mem().try_scavenge()
            };
            match scavenged {
                Ok(_) => {
                    self.vm.bump_cache_epoch();
                    self.vm.global_cache.clear(self.vm.cache_epoch());
                }
                Err(e) => result = Err(e),
            }
        }
        drop(guard);
        if result.is_ok() {
            self.check_low_space();
        }
        result
    }

    /// Signals the low-space semaphore (edge-triggered via a latch on the
    /// [`Vm`]) when a successful collection still leaves the old generation
    /// nearly full, giving the image a chance to shed load *before* hard
    /// exhaustion terminates a process.
    fn check_low_space(&self) {
        let mem = self.mem();
        let free = mem.old_free();
        let threshold = (mem.old_used() + free) / 16;
        if free < threshold {
            if !self.vm.low_space.swap(true, Ordering::Relaxed) {
                sched::signal_low_space(&self.vm);
            }
        } else if free >= threshold.saturating_mul(2) {
            self.vm.low_space.store(false, Ordering::Relaxed);
        }
    }

    /// Terminates the current process because memory is exhausted even
    /// straight after collection. The failure is contained: the report goes
    /// to the error log, the low-space semaphore fires so the image can
    /// react, and this interpreter goes back to the scheduler for the next
    /// ready process.
    fn out_of_memory(&mut self) -> Step {
        self.gc_streak = 0;
        let free = self.mem().old_free();
        self.vm.error_log.lock().push(format!(
            "outOfMemory: old space exhausted ({free} words free); process terminated"
        ));
        sched::signal_low_space(&self.vm);
        let nil = self.mem().nil();
        self.last_value = nil;
        Step::Event(Event::Terminated)
    }

    fn after_gc(&mut self) {
        self.cache.clear(self.vm.cache_epoch());
        self.free.lock().clear(self.mem().gc_epoch());
        self.refresh_special_selectors();
        self.reload_registers();
    }

    /// Drives the incremental full collector from the safepoint (no-op
    /// under [`mst_objmem::FullGcMode::Stw`]). One call performs at most one
    /// bounded stop-the-world step: *begin* (arm the write barrier) when the
    /// low-space latch is set and no window is open, otherwise one mark
    /// slice, finishing — plan/update/move, the only unbounded pause — once
    /// the trace converges. Mutators run between calls, which is the whole
    /// point: the monolithic mark pause is diced into `slice_words`-sized
    /// pieces.
    fn incremental_full_gc_step(&mut self) {
        let mem = self.mem();
        let mst_objmem::FullGcMode::Incremental { slice_words } = mem.config().full_gc_mode else {
            return;
        };
        let marking = mem.incremental_mark_active();
        if !marking && !self.vm.low_space.load(Ordering::Relaxed) {
            return;
        }
        let before = mem.gc_epoch();
        self.flush_registers();
        self.mem().retire_token(&self.token);
        let guard = self.vm.rendezvous.stop_world(self.rdv_id());
        if !mem.incremental_mark_active() {
            // Re-check under stop-world: another interpreter may have begun
            // (or finished) a window while we raced here. `full_gc_begin`
            // refuses on its own when preconditions fail (a monolithic full
            // GC since the last scavenge).
            if self.vm.low_space.load(Ordering::Relaxed) {
                mem.full_gc_begin();
            }
        } else if mem.full_gc_mark_slice(slice_words) {
            // The finish pause (plan/update/move/clear) drafts the other
            // stopped processors as compaction helpers, exactly like the
            // monolithic collector's mark phase.
            let helpers = mem.adaptive_full_gc_helpers(self.vm.processors_online() + 1);
            mem.full_gc_finish_with(helpers, |n, f| {
                guard.run_stopped(n, f);
            });
            self.vm.bump_cache_epoch();
            self.vm.global_cache.clear(self.vm.cache_epoch());
        }
        drop(guard);
        if mem.gc_epoch() != before {
            // The finish compacted old space: every cached oop moved.
            self.after_gc();
            self.check_low_space();
        }
    }

    /// The safepoint: polls stop-the-world, shutdown, and preemption.
    fn safepoint(&mut self) -> Step {
        self.counter = self.vm.options.quantum;
        self.flush_counters();
        // Chaos: a stalled safepoint response is what the watchdog exists
        // to diagnose, so the injection point sits here rather than in the
        // per-bytecode poll.
        mst_vkernel::fault::poll_stall();
        // Chaos: a processor dying mid-run. Registers are flushed first so
        // the claimed process is consistent in the heap — the supervisor's
        // recovery migrates it to a surviving interpreter, which resumes it
        // from exactly this bytecode boundary.
        if self.panic_injectable && mst_vkernel::fault::thread_panic() {
            self.flush_registers();
            panic!(
                "chaos: injected interpreter panic (thread.panic) on interp {}",
                self.id
            );
        }
        // Chaos: the serving layer's mid-doit panic (serve.panic). Fires
        // only while this interpreter is executing the watched doit, so one
        // tenant session dies without touching any other session's workers.
        if self.watching_claimed() && self.vm.take_doit_panic() {
            self.flush_registers();
            panic!(
                "chaos: injected mid-doit panic (serve.panic) on interp {}",
                self.id
            );
        }
        if self.vm.rendezvous.poll() {
            self.flush_registers();
            // The stopper may size a scavenge while we sit parked: retire
            // the allocation buffer so eden accounting is exact.
            self.mem().retire_token(&self.token);
            self.vm.rendezvous.park(self.rdv_id());
            self.after_gc();
        } else if self.sels_epoch != self.mem().gc_epoch() {
            // Another interpreter collected while we were between polls
            // (possible when we were parked inside a lock delay).
            self.after_gc();
        }
        self.incremental_full_gc_step();
        if !self.vm.running() {
            self.flush_registers();
            return Step::Event(Event::Shutdown);
        }
        if self.vm.preempt_hint.load(Ordering::Relaxed) > self.priority {
            self.flush_registers();
            return Step::Event(Event::Yielded);
        }
        // Deadline enforcement: a watched doit runs under an optional
        // per-request budget (armed by the serving layer). Expiry takes the
        // same containment route as `outOfMemory` — the process terminates
        // cleanly, the heap stays consistent, and the failure surfaces
        // through the error log.
        if self.watching_claimed() {
            let deadline = self.vm.deadline_ns.load(Ordering::Relaxed);
            if deadline != 0 && tel::now_ns() >= deadline {
                return self.deadline_expired();
            }
        }
        // If the process we are watching finished on another interpreter,
        // stop executing whatever we claimed (it stays ready).
        if let Some(w) = &self.watched {
            let w = w.clone();
            if self.watched_done(&w) {
                self.flush_registers();
                return Step::Event(Event::Yielded);
            }
        }
        Step::Continue
    }

    /// Whether the currently loaded process is the watched (reserved) doit.
    fn watching_claimed(&self) -> bool {
        self.watched
            .as_ref()
            .is_some_and(|w| w.get() == self.proc_root.get())
    }

    /// Terminates the watched doit because its request deadline passed.
    /// Mirrors [`out_of_memory`](Self::out_of_memory): the report goes to
    /// the error log, the process retires through the ordinary
    /// `Terminated` unload (result stored, suspended context nilled), and
    /// the heap stays audit-clean.
    fn deadline_expired(&mut self) -> Step {
        self.flush_registers();
        self.gc_streak = 0;
        self.vm.deadline_ns.store(0, Ordering::Relaxed);
        self.vm
            .error_log
            .lock()
            .push("deadlineExpired: request budget exhausted; process terminated".to_string());
        let nil = self.mem().nil();
        self.last_value = nil;
        Step::Event(Event::Terminated)
    }

    // ------------------------------------------------------------------
    // The bytecode loop
    // ------------------------------------------------------------------

    fn execute(&mut self) -> Event {
        use mst_compiler::bytecode as bc;
        loop {
            if self.counter == 0 || self.vm.rendezvous.poll() {
                if let Step::Event(e) = self.safepoint() {
                    return e;
                }
            }
            self.counter = self.counter.saturating_sub(1);
            self.n_bytecodes += 1;
            let pc0 = self.pc;
            let op = self.fetch_byte();
            let step = match op {
                0x00..=0x0F => {
                    let v = self.mem().fetch(self.receiver, op as usize);
                    self.push(v);
                    Step::Continue
                }
                0x10..=0x1F => {
                    let v = self.temp((op - bc::PUSH_TEMP) as usize);
                    self.push(v);
                    Step::Continue
                }
                0x20..=0x3F => {
                    let v = self.literal((op - bc::PUSH_LIT_CONST) as usize);
                    self.push(v);
                    Step::Continue
                }
                0x40..=0x4F => {
                    let binding = self.literal((op - bc::PUSH_LIT_VAR) as usize);
                    let v = self.mem().fetch(binding, mst_objmem::layout::assoc::VALUE);
                    self.push(v);
                    Step::Continue
                }
                0x50..=0x57 => {
                    let v = self.pop();
                    let mem = self.mem();
                    mem.store(self.receiver, (op - bc::STORE_POP_RCVR_VAR) as usize, v);
                    Step::Continue
                }
                0x58..=0x5F => {
                    let v = self.pop();
                    self.temp_put((op - bc::STORE_POP_TEMP) as usize, v);
                    Step::Continue
                }
                bc::PUSH_SELF => {
                    let v = self.receiver;
                    self.push(v);
                    Step::Continue
                }
                bc::PUSH_TRUE => {
                    let v = self.mem().specials().get(So::True);
                    self.push(v);
                    Step::Continue
                }
                bc::PUSH_FALSE => {
                    let v = self.mem().specials().get(So::False);
                    self.push(v);
                    Step::Continue
                }
                bc::PUSH_NIL => {
                    let v = self.mem().nil();
                    self.push(v);
                    Step::Continue
                }
                bc::PUSH_MINUS_ONE => {
                    self.push(Oop::from_small_int(-1));
                    Step::Continue
                }
                bc::PUSH_ZERO => {
                    self.push(Oop::from_small_int(0));
                    Step::Continue
                }
                bc::PUSH_ONE => {
                    self.push(Oop::from_small_int(1));
                    Step::Continue
                }
                bc::PUSH_TWO => {
                    self.push(Oop::from_small_int(2));
                    Step::Continue
                }
                bc::PUSH_THIS_CONTEXT => {
                    // The context escapes: never recycle it.
                    let mem = self.mem();
                    let h = mem.header(self.ctx);
                    mem.set_header(self.ctx, h.with_escaped());
                    let v = self.ctx;
                    self.flush_registers();
                    self.push(v);
                    Step::Continue
                }
                bc::DUP => {
                    let v = self.top();
                    self.push(v);
                    Step::Continue
                }
                bc::POP => {
                    self.sp -= 1;
                    Step::Continue
                }
                bc::RETURN_SELF => {
                    let v = self.receiver;
                    self.method_return(v)
                }
                bc::RETURN_TRUE => {
                    let v = self.mem().specials().get(So::True);
                    self.method_return(v)
                }
                bc::RETURN_FALSE => {
                    let v = self.mem().specials().get(So::False);
                    self.method_return(v)
                }
                bc::RETURN_NIL => {
                    let v = self.mem().nil();
                    self.method_return(v)
                }
                bc::RETURN_TOP => {
                    let v = self.pop();
                    self.method_return(v)
                }
                bc::BLOCK_RETURN_TOP => {
                    let v = self.pop();
                    self.block_return(v)
                }
                bc::EXT_PUSH | bc::EXT_STORE | bc::EXT_STORE_POP => {
                    let operand = self.fetch_byte();
                    self.extended_op(op, operand)
                }
                bc::SEND | bc::SEND_SUPER => {
                    let lit = self.fetch_byte() as usize;
                    let nargs = self.fetch_byte() as usize;
                    let selector = self.literal(lit);
                    self.send(pc0, selector, nargs, op == bc::SEND_SUPER)
                }
                bc::PUSH_BLOCK => {
                    let nargs = self.fetch_byte() as usize;
                    let lo = self.fetch_byte() as usize;
                    let hi = self.fetch_byte() as usize;
                    let len = lo | (hi << 8);
                    self.push_block(pc0, nargs, len)
                }
                0x90..=0x97 => {
                    self.pc += (op - bc::SHORT_JUMP + 1) as usize;
                    Step::Continue
                }
                0x98..=0x9F => {
                    let d = (op - bc::SHORT_JUMP_FALSE + 1) as isize;
                    self.conditional_jump(pc0, d, false)
                }
                0xA0..=0xA7 => {
                    let operand = self.fetch_byte() as isize;
                    let d = ((op as isize) - 0xA4) * 256 + operand;
                    self.pc = (self.pc as isize + d) as usize;
                    Step::Continue
                }
                0xA8..=0xAB => {
                    let operand = self.fetch_byte() as isize;
                    let d = ((op & 3) as isize) * 256 + operand;
                    self.conditional_jump(pc0, d, true)
                }
                0xAC..=0xAF => {
                    let operand = self.fetch_byte() as isize;
                    let d = ((op & 3) as isize) * 256 + operand;
                    self.conditional_jump(pc0, d, false)
                }
                0xB0..=0xCF => self.special_send(pc0, (op - bc::SPECIAL_SEND) as usize),
                0xD0..=0xDF => {
                    let selector = self.literal((op - bc::SEND_LIT_0) as usize);
                    self.send(pc0, selector, 0, false)
                }
                0xE0..=0xEF => {
                    let selector = self.literal((op - bc::SEND_LIT_1) as usize);
                    self.send(pc0, selector, 1, false)
                }
                0xF0..=0xFF => {
                    let selector = self.literal((op - bc::SEND_LIT_2) as usize);
                    self.send(pc0, selector, 2, false)
                }
                _ => panic!("unknown opcode {op:#04x} at pc {pc0}"),
            };
            match step {
                Step::Continue => {
                    if self.gc_streak != 0 {
                        self.gc_streak = 0;
                    }
                }
                Step::NeedGc => {
                    self.gc_streak += 1;
                    if let Step::Event(e) = self.gc_scavenge(pc0) {
                        return e;
                    }
                }
                Step::Event(e) => return e,
            }
        }
    }

    fn extended_op(&mut self, op: u8, operand: u8) -> Step {
        use mst_compiler::bytecode as bc;
        let kind = operand >> 6;
        let index = (operand & 0x3F) as usize;
        match op {
            bc::EXT_PUSH => {
                let v = match kind {
                    0 => self.mem().fetch(self.receiver, index),
                    1 => self.temp(index),
                    2 => self.literal(index),
                    _ => {
                        let binding = self.literal(index);
                        self.mem().fetch(binding, mst_objmem::layout::assoc::VALUE)
                    }
                };
                self.push(v);
            }
            bc::EXT_STORE | bc::EXT_STORE_POP => {
                let v = if op == bc::EXT_STORE_POP {
                    self.pop()
                } else {
                    self.top()
                };
                match kind {
                    0 => self.mem().store(self.receiver, index, v),
                    1 => self.temp_put(index, v),
                    _ => panic!("store to literal frame"),
                }
            }
            _ => unreachable!(),
        }
        Step::Continue
    }

    fn conditional_jump(&mut self, pc0: usize, delta: isize, jump_on: bool) -> Step {
        let mem = self.mem();
        let cond = self.top();
        let truthy = if cond == mem.specials().get(So::True) {
            true
        } else if cond == mem.specials().get(So::False) {
            false
        } else {
            // Leave the non-boolean on the stack as the receiver of
            // mustBeBoolean (paper-era Smalltalks did the same).
            let sel = mem.specials().get(So::SelMustBeBoolean);
            return self.send(pc0, sel, 0, false);
        };
        self.sp -= 1;
        if truthy == jump_on {
            self.pc = (self.pc as isize + delta) as usize;
        }
        Step::Continue
    }

    // ------------------------------------------------------------------
    // Sends
    // ------------------------------------------------------------------

    fn send(&mut self, pc0: usize, selector: Oop, nargs: usize, is_super: bool) -> Step {
        self.n_sends += 1;
        let mem = self.mem();
        if !selector.is_object() || mem.class_of(selector) != mem.specials().get(So::ClassSymbol) {
            // Tripwire: a non-Symbol selector means heap corruption; fail
            // loudly at the site rather than as a confusing DNU.
            panic!(
                "corrupt send: selector {selector:?} at pc {pc0} (interp {}, epochs {}/{})",
                self.id,
                mem.gc_epoch(),
                self.vm.cache_epoch(),
            );
        }
        let recv_slot = self.sp - nargs;
        let receiver = self.stack_at(recv_slot);
        let lookup_class = if is_super {
            // The defining class is the method's last literal.
            let nlits = self.ptr_slots - 1;
            let defining = self.literal(nlits - 1);
            mem.fetch(defining, cls::SUPERCLASS)
        } else {
            mem.class_of(receiver)
        };
        let entry = match self.lookup_cached(selector, lookup_class, is_super) {
            Some(e) => e,
            None => return self.does_not_understand(pc0, selector, nargs),
        };
        if entry.num_args as usize != nargs {
            // Arity mismatch (a perform: with the wrong argument count).
            return self.does_not_understand(pc0, selector, nargs);
        }
        if entry.primitive != 0 {
            if mst_telemetry::enabled() {
                mst_telemetry::instant(
                    "interp.primitive",
                    "interp",
                    "number",
                    entry.primitive as u64,
                );
            }
            let _prim_state = tel::timeline::enter_state(tel::ProcState::Primitive);
            match self.dispatch_primitive(entry.primitive, nargs, pc0) {
                PrimOutcome::Done => {
                    self.n_prims += 1;
                    return Step::Continue;
                }
                PrimOutcome::NeedGc => return Step::NeedGc,
                PrimOutcome::Event2(code) => {
                    self.n_prims += 1;
                    return Step::Event(match code {
                        0 => Event::Blocked,
                        1 => Event::Yielded,
                        2 => Event::Terminated,
                        _ => unreachable!(),
                    });
                }
                PrimOutcome::Fail => {}
            }
        }
        self.activate(&entry, nargs)
    }

    /// Method lookup through the policy-selected cache.
    fn lookup_cached(&mut self, selector: Oop, class: Oop, is_super: bool) -> Option<CacheEntry> {
        let epoch = self.vm.cache_epoch();
        if !is_super {
            match self.vm.options.cache_policy {
                CachePolicy::Replicated => {
                    if self.cache.epoch != epoch {
                        self.cache.clear(epoch);
                    }
                    if let Some(e) = self.cache.probe(selector, class) {
                        self.n_hits += 1;
                        return Some(*e);
                    }
                }
                CachePolicy::Serialized => {
                    if let Some(e) = self.vm.global_cache.probe(selector, class, epoch) {
                        self.n_hits += 1;
                        return Some(e);
                    }
                }
            }
        }
        self.n_misses += 1;
        if mst_telemetry::enabled() {
            mst_telemetry::instant("interp.cache_miss", "interp", "selector", selector.raw());
        }
        let entry = self.lookup_method(selector, class)?;
        if !is_super {
            match self.vm.options.cache_policy {
                CachePolicy::Replicated => self.cache.insert(entry),
                CachePolicy::Serialized => self.vm.global_cache.insert(entry, epoch),
            }
        }
        Some(entry)
    }

    /// Walks the superclass chain.
    fn lookup_method(&self, selector: Oop, class: Oop) -> Option<CacheEntry> {
        let mem = self.mem();
        let nil = mem.nil();
        let mut c = class;
        while c != nil {
            let dict = mem.fetch(c, cls::METHOD_DICT);
            if let Some(method) = method_dict_at(mem, dict, selector) {
                let mh = MethodHeader::decode(mem.fetch(method, 0));
                return Some(CacheEntry {
                    selector: selector.raw(),
                    class: class.raw(),
                    method: method.raw(),
                    num_args: mh.num_args,
                    num_temps: mh.num_temps,
                    primitive: mh.primitive,
                    large_context: mh.large_context,
                    pointer_slots: mh.pointer_slots() as u16,
                });
            }
            c = mem.fetch(c, cls::SUPERCLASS);
        }
        None
    }

    fn does_not_understand(&mut self, pc0: usize, selector: Oop, nargs: usize) -> Step {
        let mem = self.mem();
        // Materialize the Message before touching the stack so a failed
        // allocation can safely restart the whole send.
        let Some(args_arr) = mem.alloc_array(&self.token, nargs) else {
            return Step::NeedGc;
        };
        let msg_class = mem.specials().get(So::ClassMessage);
        let Some(msg) = mem.allocate(
            &self.token,
            msg_class,
            ObjFormat::Pointers,
            message::SIZE,
            0,
        ) else {
            return Step::NeedGc;
        };
        for i in 0..nargs {
            let v = self.stack_at(self.sp - nargs + 1 + i);
            mem.store_nocheck(args_arr, i, v);
        }
        mem.store_nocheck(msg, message::SELECTOR, selector);
        mem.store_nocheck(msg, message::ARGS, args_arr);
        self.sp -= nargs;
        self.push(msg);
        let dnu = mem.specials().get(So::SelDoesNotUnderstand);
        if selector == dnu {
            // The argument is the Message from the original failure.
            let orig = mem.fetch(mem.fetch(msg, message::ARGS), 0);
            let orig_sel = mem.fetch(orig, message::SELECTOR);
            let rcls = mem.class_of(self.stack_at(self.sp - nargs));
            let cls_name = mem.fetch(rcls, cls::NAME);
            panic!(
                "recursive doesNotUnderstand: #{} not understood by an instance of {} \
                 and doesNotUnderstand: lookup failed",
                mem.str_value(orig_sel),
                if cls_name == mem.nil() {
                    "<anonymous class>".to_string()
                } else {
                    mem.str_value(cls_name)
                },
            );
        }
        self.send(pc0, dnu, 1, false)
    }

    // ------------------------------------------------------------------
    // Activation & returns
    // ------------------------------------------------------------------

    /// Allocates (or recycles) a method context of the right size.
    fn alloc_method_ctx(&mut self, large: bool) -> Option<Oop> {
        let kind = if large {
            CtxKind::MethodLarge
        } else {
            CtxKind::MethodSmall
        };
        let epoch = self.mem().gc_epoch();
        let recycled = match self.vm.options.context_policy {
            FreeListPolicy::Disabled => None,
            FreeListPolicy::Replicated => {
                let mut mine = self.free.lock();
                if mine.epoch != epoch {
                    mine.clear(epoch);
                }
                mine.pop(self.mem(), kind)
            }
            FreeListPolicy::Shared => {
                let mut shared = self.vm.shared_free.lock();
                if shared.epoch != epoch {
                    shared.clear(epoch);
                }
                shared.pop(self.mem(), kind)
            }
        };
        if let Some(ctx) = recycled {
            self.n_recycled += 1;
            return Some(ctx);
        }
        self.n_ctx_alloc += 1;
        let class = self.mem().specials().get(So::ClassMethodContext);
        self.mem().allocate(
            &self.token,
            class,
            ObjFormat::Pointers,
            kind.body_slots(),
            0,
        )
    }

    fn recycle_ctx(&mut self, ctx: Oop, large: bool) {
        let kind = if large {
            CtxKind::MethodLarge
        } else {
            CtxKind::MethodSmall
        };
        match self.vm.options.context_policy {
            FreeListPolicy::Disabled => {}
            FreeListPolicy::Replicated => {
                let epoch = self.mem().gc_epoch();
                let mut mine = self.free.lock();
                if mine.epoch != epoch {
                    mine.clear(epoch);
                }
                mine.push(self.mem(), kind, ctx);
            }
            FreeListPolicy::Shared => {
                let mut shared = self.vm.shared_free.lock();
                let epoch = self.mem().gc_epoch();
                if shared.epoch != epoch {
                    shared.clear(epoch);
                }
                shared.push(self.mem(), kind, ctx);
            }
        }
    }

    fn activate(&mut self, entry: &CacheEntry, nargs: usize) -> Step {
        debug_assert_eq!(entry.num_args as usize, nargs, "arg count mismatch");
        let Some(new_ctx) = self.alloc_method_ctx(entry.large_context) else {
            return Step::NeedGc;
        };
        let mem = self.mem();
        let method = Oop::from_raw(entry.method);
        let receiver = self.stack_at(self.sp - nargs);
        // Save the caller's registers before switching.
        self.flush_registers();
        reinit_method_ctx(
            mem,
            new_ctx,
            self.ctx,
            method,
            receiver,
            entry.num_temps as usize,
        );
        for i in 0..nargs {
            let v = self.stack_at(self.sp - nargs + 1 + i);
            mem.store(new_ctx, method_ctx::STACK_START + i, v);
        }
        self.sp -= nargs + 1; // pop receiver and args in the caller
        mem.store_nocheck(
            self.ctx,
            method_ctx::STACKP,
            Oop::from_small_int(self.sp as i64),
        );
        // Switch registers to the callee.
        self.ctx = new_ctx;
        self.is_block = false;
        self.home = new_ctx;
        self.receiver = receiver;
        self.method = method;
        self.ptr_slots = entry.pointer_slots as usize;
        self.pc = 0;
        self.sp = method_ctx::STACK_START + entry.num_temps as usize - 1;
        Step::Continue
    }

    /// `^value` — return from the home method to its sender.
    fn method_return(&mut self, value: Oop) -> Step {
        let mem = self.mem();
        let home = self.home;
        let sender = mem.fetch(home, method_ctx::SENDER);
        // Dead-context marker: pc := nil (detected by later non-local
        // returns through this frame).
        let nil = mem.nil();
        if mem.fetch(home, method_ctx::PC) == nil {
            // Home already returned: cannotReturn.
            return self.cannot_return(value);
        }
        mem.store_nocheck(home, method_ctx::PC, nil);
        mem.store(home, method_ctx::SENDER, nil);
        if !self.is_block {
            // Normal return: the frame may be recyclable.
            let h = mem.header(self.ctx);
            if !h.is_escaped() {
                let large = h.body_words() == ctx_size::LARGE_METHOD_CTX;
                let ctx = self.ctx;
                self.recycle_ctx(ctx, large);
            }
        }
        self.return_to(sender, value)
    }

    /// End of a block: return to the block's caller.
    fn block_return(&mut self, value: Oop) -> Step {
        let mem = self.mem();
        let caller = mem.fetch(self.ctx, block_ctx::CALLER);
        let nil = mem.nil();
        mem.store_nocheck(self.ctx, block_ctx::CALLER, nil);
        self.return_to(caller, value)
    }

    fn return_to(&mut self, target: Oop, value: Oop) -> Step {
        let mem = self.mem();
        if target == mem.nil() {
            self.last_value = value;
            // Root the value so watchers can read it after GC.
            return Step::Event(Event::Terminated);
        }
        self.load_ctx(target);
        self.push(value);
        Step::Continue
    }

    fn cannot_return(&mut self, value: Oop) -> Step {
        // Report through the image: self cannotReturn: value.
        let rcvr = self.receiver;
        self.push(rcvr);
        self.push(value);
        let sel = self.mem().specials().get(So::SelCannotReturn);
        self.send(self.pc, sel, 1, false)
    }

    // ------------------------------------------------------------------
    // Blocks
    // ------------------------------------------------------------------

    fn push_block(&mut self, _pc0: usize, nargs: usize, len: usize) -> Step {
        let mem = self.mem();
        let large = mem.header(self.home).body_words() == ctx_size::LARGE_METHOD_CTX;
        let kind = if large {
            CtxKind::BlockLarge
        } else {
            CtxKind::BlockSmall
        };
        let class = mem.specials().get(So::ClassBlockContext);
        let Some(block) = mem.allocate(
            &self.token,
            class,
            ObjFormat::Pointers,
            kind.body_slots(),
            0,
        ) else {
            return Step::NeedGc;
        };
        let initial_pc = self.pc;
        reinit_block_ctx(mem, block, nargs, initial_pc, self.home);
        // The home context escapes through the block.
        let h = mem.header(self.home);
        mem.set_header(self.home, h.with_escaped());
        self.push(block);
        self.pc += len;
        Step::Continue
    }

    /// `value`/`value:`… — activate a block context (ST-80 style: the block
    /// object itself is the activation, so blocks are not reentrant).
    pub(crate) fn block_value(&mut self, nargs: usize) -> PrimOutcome {
        let mem = self.mem();
        let block = self.stack_at(self.sp - nargs);
        if mem.class_of(block) != mem.specials().get(So::ClassBlockContext) {
            return PrimOutcome::Fail;
        }
        let expected = mem.fetch(block, block_ctx::NARGS).as_small_int() as usize;
        if expected != nargs {
            return PrimOutcome::Fail;
        }
        // Save the caller.
        self.flush_registers();
        // Move the arguments onto the block's own stack.
        for i in 0..nargs {
            let v = self.stack_at(self.sp - nargs + 1 + i);
            mem.store(block, block_ctx::STACK_START + i, v);
        }
        self.sp -= nargs + 1;
        mem.store_nocheck(
            self.ctx,
            method_ctx::STACKP,
            Oop::from_small_int(self.sp as i64),
        );
        let initial_pc = mem.fetch(block, block_ctx::INITIAL_PC).as_small_int() as usize;
        mem.store(block, block_ctx::CALLER, self.ctx);
        mem.store_nocheck(block, block_ctx::PC, Oop::from_small_int(initial_pc as i64));
        let top = block_ctx::STACK_START + nargs;
        mem.store_nocheck(
            block,
            block_ctx::STACKP,
            Oop::from_small_int(top as i64 - 1),
        );
        self.load_ctx(block);
        PrimOutcome::Done
    }

    // ------------------------------------------------------------------
    // Special-selector sends (fast paths)
    // ------------------------------------------------------------------

    fn special_send(&mut self, pc0: usize, index: usize) -> Step {
        let mem = self.mem();
        let (_, nargs) = mst_compiler::bytecode::SPECIAL_SELECTORS[index];
        let nargs = nargs as usize;
        // Fast paths for SmallInteger arithmetic and identity tests.
        if index < 16 && nargs == 1 {
            let a = self.stack_at(self.sp - 1);
            let b = self.stack_at(self.sp);
            if a.is_small_int() && b.is_small_int() {
                if let Some(result) = small_int_op(mem, index, a.as_small_int(), b.as_small_int()) {
                    self.sp -= 1;
                    self.stack_at_put(self.sp, result);
                    return Step::Continue;
                }
            }
        }
        match index {
            16 => {
                // ==
                let b = self.pop();
                let a = self.top();
                let t = mem.specials().get(So::True);
                let f = mem.specials().get(So::False);
                let v = if a == b { t } else { f };
                self.stack_at_put(self.sp, v);
                return Step::Continue;
            }
            17 => {
                // class
                let v = mem.class_of(self.top());
                self.stack_at_put(self.sp, v);
                return Step::Continue;
            }
            23 | 24 => {
                // isNil / notNil
                let a = self.top();
                let t = mem.specials().get(So::True);
                let f = mem.specials().get(So::False);
                let is_nil = a == mem.nil();
                let v = if (index == 23) == is_nil { t } else { f };
                self.stack_at_put(self.sp, v);
                return Step::Continue;
            }
            _ => {}
        }
        // Everything else: a full send of the special selector.
        if self.sels_epoch != mem.gc_epoch() {
            self.refresh_special_selectors();
        }
        let selector = self.special_sels[index];
        self.send(pc0, selector, nargs, false)
    }
}

/// Creates a suspended Process whose bottom context activates `method` on
/// `receiver`. The caller schedules it with [`scheduler::add_ready`] (or the
/// image's `resume`).
///
/// [`scheduler::add_ready`]: crate::scheduler::add_ready
pub fn spawn_method_process(
    vm: &Vm,
    token: &AllocToken,
    method: Oop,
    receiver: Oop,
    priority: i64,
) -> Option<Oop> {
    let mem = &vm.mem;
    let mh = MethodHeader::decode(mem.fetch(method, 0));
    let kind = if mh.large_context {
        CtxKind::MethodLarge
    } else {
        CtxKind::MethodSmall
    };
    let class = mem.specials().get(So::ClassMethodContext);
    let ctx = mem.allocate(token, class, ObjFormat::Pointers, kind.body_slots(), 0)?;
    reinit_method_ctx(mem, ctx, mem.nil(), method, receiver, mh.num_temps as usize);
    mem.store_nocheck(
        ctx,
        method_ctx::STACKP,
        Oop::from_small_int((method_ctx::STACK_START + mh.num_temps as usize) as i64 - 1),
    );
    sched::create_process(mem, token, ctx, priority, mem.nil())
}

/// Division rounding toward negative infinity (Smalltalk `//`).
pub(crate) fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if r != 0 && (r < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

/// SmallInteger fast-path arithmetic; `None` falls back to a full send
/// (overflow, division by zero, inexact division).
pub(crate) fn small_int_op(mem: &ObjectMemory, index: usize, a: i64, b: i64) -> Option<Oop> {
    let t = mem.specials().get(So::True);
    let f = mem.specials().get(So::False);
    let boolean = |v: bool| Some(if v { t } else { f });
    match index {
        0 => Oop::try_from_i64(a.checked_add(b)?),
        1 => Oop::try_from_i64(a.checked_sub(b)?),
        2 => boolean(a < b),
        3 => boolean(a > b),
        4 => boolean(a <= b),
        5 => boolean(a >= b),
        6 => boolean(a == b),
        7 => boolean(a != b),
        8 => Oop::try_from_i64(a.checked_mul(b)?),
        9 => {
            // `/` only succeeds when exact.
            if b == 0 || a % b != 0 {
                None
            } else {
                Oop::try_from_i64(a / b)
            }
        }
        10 => {
            // \\ — modulo with the divisor's sign (floored).
            if b == 0 {
                None
            } else {
                Oop::try_from_i64(a - floor_div(a, b) * b)
            }
        }
        11 => {
            // // — floored division.
            if b == 0 {
                None
            } else {
                Oop::try_from_i64(floor_div(a, b))
            }
        }
        12 => {
            // bitShift:
            if b >= 0 {
                if b > 62 {
                    None
                } else {
                    let r = a.checked_shl(b as u32)?;
                    if r >> b as u32 != a {
                        None
                    } else {
                        Oop::try_from_i64(r)
                    }
                }
            } else {
                Oop::try_from_i64(a >> (-b).min(63) as u32)
            }
        }
        13 => Oop::try_from_i64(a & b),
        14 => Oop::try_from_i64(a | b),
        _ => None, // @ (Point creation) goes through the image
    }
}
