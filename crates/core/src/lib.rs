//! Multiprocessor Smalltalk — the public API.
//!
//! [`MsSystem`] assembles the whole reproduction: object memory, bootstrap
//! image, and one interpreter per virtual processor, configured by
//! [`Strategies`] — the paper's serialization / replication / reorganization
//! knobs — and [`SystemState`], the four configurations of Table 2.
//!
//! ```no_run
//! use mst_core::{MsConfig, MsSystem, Value};
//!
//! let mut ms = MsSystem::new(MsConfig::default());
//! let value = ms.evaluate("3 + 4 * 2").unwrap();
//! assert_eq!(value, Value::Int(14));
//! ms.shutdown();
//! ```

use std::fmt;
use std::sync::Arc;

use mst_compiler::CompileError;
use mst_image::BootstrapError;
use mst_interp::{
    scheduler, spawn_method_process, supervise, CachePolicy, FreeListPolicy, Interpreter,
    RunOutcome, Vm, VmOptions,
};
pub use mst_interp::{ProcessorInfo, SupervisorPolicy};
pub use mst_objmem::SnapshotTemplate;
use mst_objmem::{AllocPolicy, MemoryConfig, ObjectMemory, Oop, RootHandle, So};
use mst_vkernel::{spawn_lightweight, LightweightHandle, Processor, SyncMode};

pub mod testing;

/// The four system states measured in the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemState {
    /// "Baseline BS": the interpreter before any multiprocessor support —
    /// no interlocked operations, a single interpreter.
    BaselineBs,
    /// "MS": full multiprocessor support, one busy interpreter.
    Ms,
    /// "MS with four idle Processes": four extra interpreters each running
    /// `[true] whileTrue`.
    MsIdle4,
    /// "MS with four busy Processes": four extra interpreters each running
    /// the sweep-hand-style busy loop.
    MsBusy4,
}

impl SystemState {
    /// All four states, in the paper's row order.
    pub const ALL: [SystemState; 4] = [
        SystemState::BaselineBs,
        SystemState::Ms,
        SystemState::MsIdle4,
        SystemState::MsBusy4,
    ];

    /// The paper's row label.
    pub fn label(self) -> &'static str {
        match self {
            SystemState::BaselineBs => "Baseline BS on multiprocessor",
            SystemState::Ms => "MS on multiprocessor",
            SystemState::MsIdle4 => "MS with four idle Processes",
            SystemState::MsBusy4 => "MS with four busy Processes",
        }
    }

    /// Number of background competitor Processes.
    pub fn competitors(self) -> usize {
        match self {
            SystemState::BaselineBs | SystemState::Ms => 0,
            SystemState::MsIdle4 | SystemState::MsBusy4 => 4,
        }
    }
}

/// The paper's three adaptation strategies, as configuration.
///
/// Table 3 maps strategies to resources; this struct is the runtime
/// realization (reorganization has no knob — the `activeProcess` rework is
/// structural and always on, with `thisProcess`/`canRun:` primitives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Strategies {
    /// Baseline BS (no interlocking) or MS.
    pub sync: SyncMode,
    /// Method-lookup cache: serialized (two-level lock) or replicated.
    pub cache: CachePolicy,
    /// Free context lists: disabled, shared-locked, or replicated.
    pub free_contexts: FreeListPolicy,
    /// New-space allocation: one locked eden, or per-processor buffers
    /// (the paper's proposed "replication of the new-object space").
    pub alloc: AllocPolicy,
}

impl Default for Strategies {
    fn default() -> Self {
        Strategies {
            sync: SyncMode::Multiprocessor,
            cache: CachePolicy::Replicated,
            free_contexts: FreeListPolicy::Replicated,
            alloc: AllocPolicy::SharedEden,
        }
    }
}

impl Strategies {
    /// The baseline-BS strategy set (everything pre-multiprocessor).
    pub fn baseline() -> Strategies {
        Strategies {
            sync: SyncMode::Uniprocessor,
            ..Strategies::default()
        }
    }

    /// The paper's final MS configuration.
    pub fn ms() -> Strategies {
        Strategies::default()
    }
}

/// Full system configuration.
#[derive(Debug, Clone, Copy)]
pub struct MsConfig {
    /// Strategy knobs.
    pub strategies: Strategies,
    /// Number of virtual processors (the Firefly had five).
    pub processors: usize,
    /// Object-memory sizing.
    pub memory: MemoryConfig,
    /// Bytecodes between safepoint polls.
    pub quantum: u32,
    /// Record trace events ([`mst_telemetry::trace`]) while this system
    /// runs. Off by default: the disabled path is one branch on a relaxed
    /// atomic. Setting `MST_TRACE=1` in the environment also enables
    /// tracing at [`MsSystem::try_new`], regardless of this flag.
    pub trace: bool,
    /// Fault injection ([`mst_vkernel::fault`]). `None` (the default)
    /// leaves the process-global chaos registry alone, except that the
    /// `MST_CHAOS=<seed>:<rate>[:<sites>]` environment variable may arm it
    /// at [`MsSystem::try_new`]. `Some` installs the given configuration.
    /// Disabled injection costs one branch on a relaxed atomic per site.
    pub chaos: Option<mst_vkernel::fault::ChaosConfig>,
    /// What the processor supervisor does when a worker interpreter
    /// panics: restart it in place, degrade to the survivors (the
    /// default), or rethrow. The default honours `MST_SUPERVISOR_POLICY`.
    pub supervisor: SupervisorPolicy,
}

impl Default for MsConfig {
    fn default() -> Self {
        MsConfig {
            strategies: Strategies::default(),
            processors: 5,
            memory: MemoryConfig::default(),
            quantum: 1024,
            trace: false,
            chaos: None,
            supervisor: SupervisorPolicy::from_env(),
        }
    }
}

impl MsConfig {
    /// Configuration for one of the paper's Table 2 states.
    pub fn for_state(state: SystemState) -> MsConfig {
        let strategies = match state {
            SystemState::BaselineBs => Strategies::baseline(),
            _ => Strategies::ms(),
        };
        let processors = match state {
            SystemState::BaselineBs => 1,
            _ => 5,
        };
        MsConfig {
            strategies,
            processors,
            ..MsConfig::default()
        }
    }
}

/// A Smalltalk value, converted for Rust consumption.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SmallInteger.
    Int(i64),
    /// Float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// nil.
    Nil,
    /// String contents.
    Str(String),
    /// Symbol name.
    Symbol(String),
    /// Character.
    Char(char),
    /// Anything else, identified by its class name.
    Other {
        /// The value's class name.
        class_name: String,
    },
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v:?}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Nil => f.write_str("nil"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Symbol(s) => write!(f, "#{s}"),
            Value::Char(c) => write!(f, "${c}"),
            Value::Other { class_name } => write!(f, "<{class_name}>"),
        }
    }
}

/// Errors from [`MsSystem::evaluate`].
#[derive(Debug)]
pub enum EvalError {
    /// The doit failed to compile.
    Compile(CompileError),
    /// The doit's process died with an `error:` report.
    Runtime(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Compile(e) => write!(f, "{e}"),
            EvalError::Runtime(msg) => write!(f, "Smalltalk error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<CompileError> for EvalError {
    fn from(e: CompileError) -> Self {
        EvalError::Compile(e)
    }
}

/// A compiled doit, ready for repeated execution.
#[derive(Debug, Clone)]
pub struct Prepared {
    method: RootHandle,
}

/// A running Multiprocessor Smalltalk system.
pub struct MsSystem {
    vm: Arc<Vm>,
    config: MsConfig,
    main: Interpreter,
    workers: Vec<LightweightHandle<()>>,
    background: Vec<RootHandle>,
}

impl fmt::Debug for MsSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MsSystem")
            .field("config", &self.config)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MsSystem {
    /// Builds the object memory, bootstraps the image, and starts worker
    /// interpreters on processors 1..n (the main interpreter runs on the
    /// calling thread, processor 0).
    ///
    /// # Panics
    ///
    /// Panics if the bundled image sources fail to compile (a build defect,
    /// not a runtime condition).
    pub fn new(config: MsConfig) -> MsSystem {
        MsSystem::try_new(config).expect("bundled image failed to bootstrap")
    }

    /// Like [`new`](Self::new) but surfacing bootstrap errors.
    pub fn try_new(config: MsConfig) -> Result<MsSystem, BootstrapError> {
        // Tracing is process-global and only ever switched ON here: systems
        // run concurrently in tests, so one asking for a trace must not
        // silence another's.
        if config.trace {
            mst_telemetry::set_enabled(true);
        } else {
            mst_telemetry::init_from_env();
        }
        // Per-processor state timelines are opt-in the same way
        // (`MST_TIMELINE=1`); profile harnesses enable them directly.
        mst_telemetry::timeline::init_from_env();
        // Fault injection follows the same pattern: an explicit config
        // wins; otherwise MST_CHAOS may arm the process-global registry.
        if let Some(chaos) = config.chaos {
            mst_vkernel::fault::install(chaos);
        } else {
            mst_vkernel::fault::init_from_env();
        }
        let mut memory = config.memory;
        memory.sync = config.strategies.sync;
        memory.alloc_policy = config.strategies.alloc;
        let options = VmOptions {
            sync: config.strategies.sync,
            memory,
            cache_policy: config.strategies.cache,
            context_policy: config.strategies.free_contexts,
            processors: config.processors,
            quantum: config.quantum,
        };
        let vm = Arc::new(Vm::new(options));
        mst_image::build_image(&vm.mem)?;
        let main = Interpreter::new(Arc::clone(&vm));
        let mut system = MsSystem {
            vm,
            config,
            main,
            workers: Vec::new(),
            background: Vec::new(),
        };
        system.start_workers();
        Ok(system)
    }

    fn start_workers(&mut self) {
        // Baseline BS is single-threaded by definition.
        if !self.config.strategies.sync.is_mp() {
            return;
        }
        let policy = self.config.supervisor;
        for p in 1..self.config.processors {
            // Register before the thread exists: the roster must reflect
            // every processor the system has committed to, or a caller
            // polling `processors_online()` right after construction races
            // against worker startup and sees an empty roster (observable
            // on a single-core host, where the spawner wins every time).
            self.vm.roster_register(p);
            let vm = Arc::clone(&self.vm);
            let handle = spawn_lightweight(Processor(p), "interp", move || {
                supervise(vm, p, policy);
            });
            self.workers.push(handle);
        }
    }

    /// The shared VM (counters, devices, memory).
    pub fn vm(&self) -> &Vm {
        &self.vm
    }

    /// The object memory.
    pub fn mem(&self) -> &ObjectMemory {
        &self.vm.mem
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &MsConfig {
        &self.config
    }

    /// Compiles and runs a Smalltalk expression sequence as a Process at
    /// user priority, returning the value of its last expression.
    ///
    /// # Errors
    ///
    /// [`EvalError::Compile`] for syntax errors; [`EvalError::Runtime`] if
    /// the Process terminated through `error:`.
    pub fn evaluate(&mut self, source: &str) -> Result<Value, EvalError> {
        let prepared = self.prepare(source)?;
        self.run_prepared(&prepared)
    }

    /// Runs `f` with every interpreter parked at a safepoint. All heap
    /// access performed outside the main interpreter (compilation, process
    /// spawning, result conversion) must go through this: the main thread
    /// is not a rendezvous participant between runs, so without the guard
    /// it would race against worker-triggered scavenges.
    fn with_world<R>(&self, f: impl FnOnce(&Vm) -> R) -> R {
        // stop_world() counts its caller as one of the registered
        // participants; a thread that is not registered must join first or
        // the rendezvous under-waits by one and a mutator keeps running.
        // The RAII guard also unregisters if `f` panics, so workers are
        // not left waiting on a dead participant.
        let me = self.vm.rendezvous.participant();
        let guard = me.stop_world();
        let r = f(&self.vm);
        drop(guard);
        r
    }

    /// Compiles a doit once for repeated execution (benchmark harnesses).
    ///
    /// # Errors
    ///
    /// [`EvalError::Compile`] for syntax errors.
    pub fn prepare(&mut self, source: &str) -> Result<Prepared, EvalError> {
        let method = self.with_world(|vm| mst_image::compile_doit(&vm.mem, source))?;
        Ok(Prepared {
            method: self.with_world(|vm| vm.mem.new_root(method)),
        })
    }

    /// Runs a [`Prepared`] doit as a fresh Process.
    ///
    /// # Errors
    ///
    /// [`EvalError::Runtime`] if the Process terminated through `error:`.
    pub fn run_prepared(&mut self, prepared: &Prepared) -> Result<Value, EvalError> {
        let root = self.run_prepared_rooted(prepared)?;
        Ok(self.with_world(|_| self.value_of_unguarded(root.get())))
    }

    /// As [`run_prepared`](Self::run_prepared), returning a GC-tracked root
    /// so the result object stays alive and current across further runs.
    ///
    /// # Errors
    ///
    /// As [`run_prepared`](Self::run_prepared).
    pub fn run_prepared_rooted(&mut self, prepared: &Prepared) -> Result<RootHandle, EvalError> {
        let errors_before = self.vm.error_log.lock().len();
        let process = self.with_world(|vm| {
            let token = vm.mem.new_token();
            loop {
                match spawn_method_process(vm, &token, prepared.method.get(), vm.mem.nil(), 5) {
                    Some(p) => {
                        scheduler::add_ready(vm, p);
                        break Ok(vm.mem.new_root(p));
                    }
                    None => {
                        // Eden is full; collect while we hold the world. A
                        // collection that cannot complete (old space full)
                        // is reported instead of crashing the system.
                        if let Err(e) = vm.mem.try_scavenge() {
                            scheduler::signal_low_space(vm);
                            break Err(EvalError::Runtime(format!("outOfMemory: {e}")));
                        }
                        vm.bump_cache_epoch();
                    }
                }
            }
        })?;
        // Pin the doit to this interpreter so measurements charge the
        // right thread; workers will not claim it.
        self.vm.set_reserved(Some(process.clone()));
        let doit_span = mst_telemetry::span("vm.doit", "vm");
        let outcome = self.main.run(Some(process.clone()));
        drop(doit_span);
        self.vm.set_reserved(None);
        match outcome {
            RunOutcome::WatchedTerminated => {}
            RunOutcome::Shutdown => return Err(EvalError::Runtime("VM shut down".into())),
        }
        // The terminating interpreter (possibly a worker) left the value in
        // the Process's result slot.
        let result = self.with_world(|vm| {
            vm.mem.new_root(
                vm.mem
                    .fetch(process.get(), mst_objmem::layout::process::RESULT),
            )
        });
        let errors = self.vm.error_log.lock();
        if errors.len() > errors_before {
            return Err(EvalError::Runtime(
                errors.last().cloned().unwrap_or_default(),
            ));
        }
        drop(errors);
        Ok(result)
    }

    /// Like [`evaluate`](Self::evaluate), but returns a GC-tracked root for
    /// the result so Rust code can keep the object alive across further
    /// execution (benchmark harnesses retaining object graphs).
    ///
    /// # Errors
    ///
    /// As [`evaluate`](Self::evaluate).
    pub fn evaluate_to_root(&mut self, source: &str) -> Result<RootHandle, EvalError> {
        let prepared = self.prepare(source)?;
        self.run_prepared_rooted(&prepared)
    }

    /// Converts an oop into a [`Value`], parking the interpreters while it
    /// reads the heap.
    pub fn value_of(&self, oop: Oop) -> Value {
        self.with_world(|_| self.value_of_unguarded(oop))
    }

    fn value_of_unguarded(&self, oop: Oop) -> Value {
        let mem = &self.vm.mem;
        if oop == Oop::ZERO {
            return Value::Nil;
        }
        if oop.is_small_int() {
            return Value::Int(oop.as_small_int());
        }
        let sp = mem.specials();
        if oop == mem.nil() {
            return Value::Nil;
        }
        if oop == sp.get(So::True) {
            return Value::Bool(true);
        }
        if oop == sp.get(So::False) {
            return Value::Bool(false);
        }
        let class = mem.class_of(oop);
        if class == sp.get(So::ClassString) {
            Value::Str(mem.str_value(oop))
        } else if class == sp.get(So::ClassSymbol) {
            Value::Symbol(mem.str_value(oop))
        } else if class == sp.get(So::ClassFloat) {
            Value::Float(mem.float_value(oop))
        } else if class == sp.get(So::ClassCharacter) {
            Value::Char(mem.fetch(oop, 0).as_small_int() as u8 as char)
        } else {
            let name = mem.fetch(class, mst_objmem::layout::class::NAME);
            Value::Other {
                class_name: if name == mem.nil() {
                    "<anonymous>".to_string()
                } else {
                    mem.str_value(name)
                },
            }
        }
    }

    /// Spawns `n` background competitor Processes (`idle` = the paper's
    /// `[true] whileTrue`, else the sweep-hand busy loop). They run on the
    /// worker interpreters until [`shutdown`](Self::shutdown).
    ///
    /// # Panics
    ///
    /// Panics if the spawn expression fails (image defect).
    pub fn spawn_competitors(&mut self, n: usize, idle: bool) {
        for _ in 0..n {
            let expr = if idle {
                "Benchmark spawnIdle"
            } else {
                "Benchmark spawnBusy"
            };
            let root = self
                .evaluate_to_root(expr)
                .expect("competitor spawn failed");
            // Keep a root so diagnostics can find the Processes.
            self.background.push(root);
        }
    }

    /// Spawns the competitors implied by a [`SystemState`].
    pub fn enter_state(&mut self, state: SystemState) {
        match state {
            SystemState::BaselineBs | SystemState::Ms => {}
            SystemState::MsIdle4 => self.spawn_competitors(4, true),
            SystemState::MsBusy4 => self.spawn_competitors(4, false),
        }
    }

    /// Number of background roots retained (diagnostics).
    pub fn background_count(&self) -> usize {
        self.background.len()
    }

    /// Writes a snapshot of the running image (paper §3.3: the
    /// `activeProcess` slot is filled around the snapshot for
    /// pre-reorganization compatibility, then emptied again).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from the writer.
    pub fn save_snapshot(
        &self,
        w: &mut impl std::io::Write,
    ) -> Result<(), mst_objmem::SnapshotError> {
        self.with_world(|vm| {
            vm.mem.scavenge(); // snapshot with an empty eden
            vm.bump_cache_epoch();
            scheduler::set_active_process_slot(&vm.mem, vm.mem.nil());
            vm.mem.save_snapshot(w)
        })
    }

    /// Writes a crash-consistent snapshot to `path`: the image is staged
    /// in a temp file, fsynced, and atomically renamed into place, so a
    /// crash mid-save can never leave a torn image where a good one was.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`mst_objmem::SnapshotError`].
    pub fn save_snapshot_file(
        &self,
        path: &std::path::Path,
    ) -> Result<(), mst_objmem::SnapshotError> {
        self.with_world(|vm| {
            vm.mem.scavenge(); // snapshot with an empty eden
            vm.bump_cache_epoch();
            scheduler::set_active_process_slot(&vm.mem, vm.mem.nil());
            vm.mem.save_snapshot_to_path(path)
        })
    }

    /// Boots a system from a snapshot file written by
    /// [`save_snapshot_file`](Self::save_snapshot_file).
    ///
    /// # Errors
    ///
    /// Propagates snapshot-format errors with section and byte offset.
    pub fn from_snapshot_file(
        path: &std::path::Path,
        config: MsConfig,
    ) -> Result<MsSystem, mst_objmem::SnapshotError> {
        let mut f = std::fs::File::open(path)
            .map_err(|e| mst_objmem::SnapshotError::open_failed(path, e))?;
        MsSystem::from_snapshot(&mut f, config)
    }

    /// A copy of the supervised-processor health roster (workers only).
    pub fn processor_roster(&self) -> Vec<ProcessorInfo> {
        self.vm.processor_roster()
    }

    /// How many supervised worker processors are currently online.
    pub fn processors_online(&self) -> usize {
        self.vm.processors_online()
    }

    /// Boots a system from a snapshot instead of a fresh bootstrap. The
    /// sizes in `config.memory` must match the snapshot's.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-format errors.
    pub fn from_snapshot(
        r: &mut impl std::io::Read,
        config: MsConfig,
    ) -> Result<MsSystem, mst_objmem::SnapshotError> {
        let mut memory = config.memory;
        memory.sync = config.strategies.sync;
        memory.alloc_policy = config.strategies.alloc;
        let mem = ObjectMemory::load_snapshot(r, memory)?;
        let options = VmOptions {
            sync: config.strategies.sync,
            memory,
            cache_policy: config.strategies.cache,
            context_policy: config.strategies.free_contexts,
            processors: config.processors,
            quantum: config.quantum,
        };
        let vm = Arc::new(Vm::with_memory(mem, options));
        let main = Interpreter::new(Arc::clone(&vm));
        let mut system = MsSystem {
            vm,
            config,
            main,
            workers: Vec::new(),
            background: Vec::new(),
        };
        system.start_workers();
        Ok(system)
    }

    /// Reads and validates a snapshot file as a reusable
    /// [`SnapshotTemplate`], applying `config`'s sync and allocation
    /// strategies to the memory configuration (as
    /// [`from_snapshot`](Self::from_snapshot) would).
    ///
    /// # Errors
    ///
    /// Propagates snapshot-format errors.
    pub fn load_template(
        path: &std::path::Path,
        config: MsConfig,
    ) -> Result<SnapshotTemplate, mst_objmem::SnapshotError> {
        let mut memory = config.memory;
        memory.sync = config.strategies.sync;
        memory.alloc_policy = config.strategies.alloc;
        SnapshotTemplate::from_path(path, memory)
    }

    /// Boots a fresh, fully independent system from a shared
    /// [`SnapshotTemplate`] — the serving layer's copy-on-load session
    /// spawn. Each call deserializes its own object memory; sessions share
    /// only the immutable image bytes.
    ///
    /// # Errors
    ///
    /// Propagates snapshot-format errors (resource exhaustion only — the
    /// template's bytes were validated when it was built).
    pub fn from_template(
        template: &SnapshotTemplate,
        config: MsConfig,
    ) -> Result<MsSystem, mst_objmem::SnapshotError> {
        let mem = template.instantiate()?;
        let options = VmOptions {
            sync: config.strategies.sync,
            memory: template.config(),
            cache_policy: config.strategies.cache,
            context_policy: config.strategies.free_contexts,
            processors: config.processors,
            quantum: config.quantum,
        };
        let vm = Arc::new(Vm::with_memory(mem, options));
        let main = Interpreter::new(Arc::clone(&vm));
        let mut system = MsSystem {
            vm,
            config,
            main,
            workers: Vec::new(),
            background: Vec::new(),
        };
        system.start_workers();
        Ok(system)
    }

    /// Runs a [`Prepared`] doit under a wall-clock deadline: if the doit is
    /// still running when the budget expires, it is terminated at its next
    /// safepoint through the same containment route as `outOfMemory` — the
    /// session stays consistent (the heap passes `audit_heap`) and the
    /// expiry surfaces as an [`EvalError::Runtime`] naming
    /// `deadlineExpired`.
    ///
    /// # Errors
    ///
    /// As [`run_prepared`](Self::run_prepared), plus `deadlineExpired` on
    /// budget expiry.
    pub fn run_prepared_with_deadline(
        &mut self,
        prepared: &Prepared,
        budget: std::time::Duration,
    ) -> Result<Value, EvalError> {
        let abs = mst_telemetry::now_ns().saturating_add(budget.as_nanos() as u64);
        self.vm.set_deadline_ns(abs.max(1));
        let result = self.run_prepared(prepared);
        self.vm.set_deadline_ns(0);
        result
    }

    /// Shrinks (or restores) this session's soft eden budget, in words —
    /// the graceful-degradation knob the serving layer turns under memory
    /// pressure. See [`mst_objmem::ObjectMemory::set_eden_budget`].
    pub fn set_eden_budget(&self, words: usize) {
        self.vm.mem.set_eden_budget(words);
    }

    /// Whether the VM's low-space latch is currently set (a collection
    /// recently left old space nearly full and the LowSpaceSemaphore was
    /// signalled).
    pub fn low_space(&self) -> bool {
        self.vm.low_space_latched()
    }

    /// Stops the world and scavenges (for tests and harnesses). With
    /// `gc_helpers > 1` configured, the stopped worker interpreters are
    /// donated to the collection as parallel scavenge helpers.
    pub fn collect_garbage(&self) {
        let me = self.vm.rendezvous.participant();
        let guard = me.stop_world();
        let helpers = self.vm.mem.config().gc_helpers;
        if helpers > 1 {
            self.vm.mem.scavenge_parallel(helpers, |n, f| {
                guard.run_stopped(n, f);
            });
        } else {
            self.vm.mem.scavenge();
        }
        self.vm.bump_cache_epoch();
        drop(guard);
    }

    /// Stops the world and runs a full mark-compact collection (for tests
    /// and harnesses). The stopped worker interpreters are donated to the
    /// mark phase as parallel helpers; the helper count adapts to the live
    /// set, so a small heap marks serially even on a big machine. Any
    /// dangling references the compactor neutralized are drained into the
    /// VM error log — the same containment surface the supervisor uses —
    /// instead of crashing the system.
    pub fn full_collect(&self) -> mst_objmem::FullGcOutcome {
        let me = self.vm.rendezvous.participant();
        let guard = me.stop_world();
        // The calling thread marks too, so it counts alongside the online
        // workers when sizing the helper pool.
        let available = self.vm.processors_online() + 1;
        let helpers = self.vm.mem.adaptive_full_gc_helpers(available);
        let outcome = self.vm.mem.full_gc_with(helpers, |n, f| {
            guard.run_stopped(n, f);
        });
        self.vm.bump_cache_epoch();
        drop(guard);
        for d in self.vm.mem.take_fullgc_dangling() {
            self.vm.error_log.lock().push(format!("heap: {d}"));
        }
        if let Some(abort) = outcome.report.aborted {
            // The compactor refused to run (e.g. the special table is
            // corrupt): the heap is unchanged and the system keeps going,
            // but operators must hear about it.
            self.vm
                .error_log
                .lock()
                .push(format!("heap: full GC aborted: {abort}"));
        }
        outcome
    }

    /// Stops the world and runs the heap verifier ([`mst_objmem`]'s
    /// [`HeapAudit`](mst_objmem::HeapAudit)): every reachable region is
    /// walked and headers, class pointers, slot targets, the remembered
    /// set, and the symbol table are cross-checked. The chaos soak harness
    /// calls this after each faulted run to prove the heap survived.
    pub fn audit_heap(&self) -> mst_objmem::HeapAudit {
        let me = self.vm.rendezvous.participant();
        let guard = me.stop_world();
        let audit = self.vm.mem.verify_heap();
        drop(guard);
        audit
    }

    /// Stops every interpreter and joins the worker threads.
    pub fn shutdown(mut self) {
        self.vm.shutdown();
        for w in self.workers.drain(..) {
            w.join();
        }
    }
}

impl Drop for MsSystem {
    fn drop(&mut self) {
        self.vm.shutdown();
        for w in self.workers.drain(..) {
            w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MsConfig {
        MsConfig {
            processors: 2,
            ..MsConfig::default()
        }
    }

    #[test]
    fn arithmetic_evaluates() {
        let mut ms = MsSystem::new(small_config());
        assert_eq!(ms.evaluate("3 + 4").unwrap(), Value::Int(7));
        assert_eq!(ms.evaluate("3 + 4 * 2").unwrap(), Value::Int(14));
        assert_eq!(ms.evaluate("10 // 3").unwrap(), Value::Int(3));
        assert_eq!(ms.evaluate("10 \\\\ 3").unwrap(), Value::Int(1));
        assert_eq!(ms.evaluate("2 < 3").unwrap(), Value::Bool(true));
    }

    #[test]
    fn message_sends_and_blocks() {
        let mut ms = MsSystem::new(small_config());
        assert_eq!(
            ms.evaluate("[:a :b | a * b] value: 6 value: 7").unwrap(),
            Value::Int(42)
        );
        assert_eq!(ms.evaluate("3 max: 9").unwrap(), Value::Int(9));
        assert_eq!(
            ms.evaluate("(1 to: 10) inject: 0 into: [:a :b | a + b]")
                .unwrap(),
            Value::Int(55)
        );
    }

    #[test]
    fn strings_and_print_string() {
        let mut ms = MsSystem::new(small_config());
        assert_eq!(
            ms.evaluate("'hello' , ' ' , 'world'").unwrap(),
            Value::Str("hello world".into())
        );
        assert_eq!(
            ms.evaluate("42 printString").unwrap(),
            Value::Str("42".into())
        );
        assert_eq!(
            ms.evaluate("(3 @ 4) printString").unwrap(),
            Value::Str("3@4".into())
        );
    }

    #[test]
    fn runtime_errors_surface() {
        let mut ms = MsSystem::new(small_config());
        let err = ms.evaluate("nil frobnicate").unwrap_err();
        match err {
            EvalError::Runtime(msg) => assert!(msg.contains("frobnicate"), "{msg}"),
            other => panic!("expected runtime error, got {other:?}"),
        }
        // The system still works afterwards.
        assert_eq!(ms.evaluate("1 + 1").unwrap(), Value::Int(2));
    }

    #[test]
    fn full_collect_keeps_the_system_running() {
        let mut ms = MsSystem::new(small_config());
        let root = ms.evaluate_to_root("'survives' , ' compaction'").unwrap();
        let outcome = ms.full_collect();
        assert!(outcome.report.is_clean(), "{}", outcome.report);
        assert!(ms.audit_heap().is_clean());
        // The rooted result survived compaction and the system still runs.
        assert_eq!(
            ms.value_of(root.get()),
            Value::Str("survives compaction".into())
        );
        assert_eq!(ms.evaluate("2 + 2").unwrap(), Value::Int(4));
    }

    #[test]
    fn compile_errors_surface() {
        let mut ms = MsSystem::new(small_config());
        assert!(matches!(ms.evaluate("3 + "), Err(EvalError::Compile(_))));
    }
}
