//! `proptest`-lite: an in-tree property-testing harness.
//!
//! Part of the hermetic-build policy (no external crates anywhere in the
//! workspace): `tests/properties.rs` checks the Smalltalk system against
//! Rust oracles on randomized inputs, and this module supplies what it
//! needs — generator combinators, an iteration budget, failure shrinking,
//! and seed reporting — in ~300 lines we own, deterministic by default.
//!
//! ## Generators
//!
//! A [`Gen<T>`] is a sampling function `(rng, size) -> T`. The `size`
//! budget (default [`DEFAULT_SIZE`]) scales every dimension a generator
//! has — integer spans, vector lengths, recursion depth — which is what
//! makes shrinking possible: re-running the same seed with a halved budget
//! yields a structurally smaller input from the same random choices.
//!
//! ## Shrinking
//!
//! When a property fails, the runner replays the failing case's seed at
//! size/2, size/4, … 1 and reports the smallest input that still fails.
//! This is coarser than `proptest`'s integrated shrinking but needs no
//! per-type shrinker and composes through [`Gen::map`] for free.
//!
//! ## Determinism and reproduction
//!
//! The master seed defaults to a hash of the property name, so a test run
//! is reproducible by construction. Failures report the per-case seed and
//! size; set `MST_PROP_SEED` (u64, decimal or `0x`-hex) to replay or to
//! explore a different part of the input space, and `MST_PROP_CASES` to
//! change the iteration budget without recompiling.
//!
//! ## Example
//!
//! ```
//! use mst_core::testing::{int_range, vec_of, Runner};
//!
//! let sums = vec_of(int_range(0, 10), 8);
//! Runner::with_cases(64).run("sum_is_bounded", &sums, |xs| {
//!     let s: i64 = xs.iter().sum();
//!     mst_core::prop_assert!(s <= 10 * xs.len() as i64, "sum {s} too big");
//!     Ok(())
//! });
//! ```

use std::fmt::Debug;
use std::rc::Rc;

use mst_vkernel::SplitMix64;

/// The default size budget: generators produce their full configured
/// ranges at this size, and proportionally less when shrinking.
pub const DEFAULT_SIZE: usize = 64;

/// The sampling function inside a [`Gen`]: draws one `T` from a PRNG
/// under a size budget.
type SampleFn<T> = dyn Fn(&mut SplitMix64, usize) -> T;

/// A composable random generator: a sampling function over a PRNG and a
/// size budget.
pub struct Gen<T> {
    run: Rc<SampleFn<T>>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: 'static> Gen<T> {
    /// Wraps a raw sampling function.
    pub fn from_fn(f: impl Fn(&mut SplitMix64, usize) -> T + 'static) -> Self {
        Gen { run: Rc::new(f) }
    }

    /// Samples one value.
    pub fn generate(&self, rng: &mut SplitMix64, size: usize) -> T {
        (self.run)(rng, size)
    }

    /// Post-processes every sample with `f`.
    pub fn map<U: 'static>(self, f: impl Fn(T) -> U + 'static) -> Gen<U> {
        Gen::from_fn(move |rng, size| f(self.generate(rng, size)))
    }
}

/// Always yields a clone of `value`.
pub fn constant<T: Clone + 'static>(value: T) -> Gen<T> {
    Gen::from_fn(move |_, _| value.clone())
}

/// Uniform integer in the half-open range `lo..hi`.
///
/// Shrinking contracts the span toward `lo`: at size budget `s` the
/// effective range is `lo .. lo + max(1, span * s / DEFAULT_SIZE)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn int_range(lo: i64, hi: i64) -> Gen<i64> {
    assert!(lo < hi, "int_range: empty range {lo}..{hi}");
    Gen::from_fn(move |rng, size| {
        let span = (hi - lo) as u64;
        let scaled = (span * size as u64 / DEFAULT_SIZE as u64).clamp(1, span);
        rng.gen_range_i64(lo, lo + scaled as i64)
    })
}

/// Picks one of the given generators uniformly, then samples it.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn one_of<T: 'static>(choices: Vec<Gen<T>>) -> Gen<T> {
    assert!(!choices.is_empty(), "one_of: no choices");
    Gen::from_fn(move |rng, size| {
        let i = rng.gen_range(0, choices.len() as u64) as usize;
        choices[i].generate(rng, size)
    })
}

/// Samples a pair, left element first.
pub fn tuple2<A: 'static, B: 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::from_fn(move |rng, size| (a.generate(rng, size), b.generate(rng, size)))
}

/// A vector of `0..=max_len` elements; the length bound scales with the
/// size budget, so shrinking halves the vector.
pub fn vec_of<T: 'static>(elem: Gen<T>, max_len: usize) -> Gen<Vec<T>> {
    Gen::from_fn(move |rng, size| {
        let cap = (max_len * size / DEFAULT_SIZE).min(max_len);
        let len = rng.gen_range(0, cap as u64 + 1) as usize;
        (0..len).map(|_| elem.generate(rng, size)).collect()
    })
}

/// An ASCII-lowercase string of `0..=max_len` characters (the shape the
/// oracle properties embed in Smalltalk string literals).
pub fn lowercase_string(max_len: usize) -> Gen<String> {
    vec_of(int_range(0, 26), max_len).map(|codes| {
        codes
            .into_iter()
            .map(|c| (b'a' + c as u8) as char)
            .collect()
    })
}

/// A recursive generator: at each of up to `levels` nesting levels, either
/// stops at `leaf` or descends through `branch` (which receives the
/// generator for the next level down).
///
/// The descent probability is ⅔ at full size and scales down with the
/// size budget, so shrinking flattens the tree.
pub fn recursive<T: 'static>(
    leaf: Gen<T>,
    levels: usize,
    branch: impl Fn(Gen<T>) -> Gen<T>,
) -> Gen<T> {
    let mut gen = leaf.clone();
    for _ in 0..levels {
        let inner = branch(gen);
        let leaf = leaf.clone();
        gen = Gen::from_fn(move |rng, size| {
            // 2*size in 3*DEFAULT_SIZE ≈ ⅔ at full size, → 0 as size → 1.
            if rng.gen_range(0, 3 * DEFAULT_SIZE as u64) < 2 * size as u64 {
                inner.generate(rng, size)
            } else {
                leaf.generate(rng, size)
            }
        });
    }
    gen
}

/// Returns `Err` from the enclosing property when the condition is false,
/// with a formatted message. The property-closure analog of `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
}

/// Returns `Err` from the enclosing property when the two sides differ.
/// The property-closure analog of `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Runs a property over many generated cases, shrinking and reporting on
/// failure.
#[derive(Debug, Clone)]
pub struct Runner {
    cases: u32,
    size: usize,
    seed: Option<u64>,
}

impl Runner {
    /// A runner with the given iteration budget (overridable at run time
    /// via `MST_PROP_CASES`) and the default size budget.
    pub fn with_cases(cases: u32) -> Self {
        Runner {
            cases,
            size: DEFAULT_SIZE,
            seed: None,
        }
    }

    /// Fixes the master seed (otherwise derived from the property name,
    /// overridable via `MST_PROP_SEED`).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Runs `prop` on `cases` generated inputs.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, after shrinking, with the failing
    /// input, its per-case seed and size, and the master seed needed to
    /// reproduce the whole run.
    pub fn run<T: Debug + 'static>(
        &self,
        name: &str,
        gen: &Gen<T>,
        mut prop: impl FnMut(&T) -> Result<(), String>,
    ) {
        let master_seed = self
            .seed
            .or_else(|| env_u64("MST_PROP_SEED"))
            .unwrap_or_else(|| fnv1a(name.as_bytes()));
        let cases = env_u64("MST_PROP_CASES").map_or(self.cases, |c| c as u32);
        let mut master = SplitMix64::new(master_seed);
        for case in 0..cases {
            let case_seed = master.next_u64();
            let value = gen.generate(&mut SplitMix64::new(case_seed), self.size);
            if let Err(err) = prop(&value) {
                let (value, size, err) = self.shrink(gen, &mut prop, case_seed, value, err);
                panic!(
                    "property '{name}' failed (case {case}/{cases}, \
                     case seed {case_seed:#x}, size {size}):\n  \
                     input: {value:?}\n  error: {err}\n  \
                     reproduce with MST_PROP_SEED={master_seed}"
                );
            }
        }
    }

    /// Replays `case_seed` at halved size budgets, keeping the smallest
    /// input that still fails.
    fn shrink<T: Debug + 'static>(
        &self,
        gen: &Gen<T>,
        prop: &mut impl FnMut(&T) -> Result<(), String>,
        case_seed: u64,
        mut value: T,
        mut err: String,
    ) -> (T, usize, String) {
        let mut reported_size = self.size;
        let mut size = self.size / 2;
        while size >= 1 {
            let candidate = gen.generate(&mut SplitMix64::new(case_seed), size);
            if let Err(e) = prop(&candidate) {
                value = candidate;
                err = e;
                reported_size = size;
            }
            size /= 2;
        }
        (value, reported_size, err)
    }
}

/// Reads a `u64` environment variable, accepting decimal or `0x`-hex.
fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let parsed = raw
        .strip_prefix("0x")
        .map_or_else(|| raw.parse().ok(), |hex| u64::from_str_radix(hex, 16).ok());
    assert!(parsed.is_some(), "{name}={raw} is not a u64");
    parsed
}

/// FNV-1a, used to derive a stable default seed from the property name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut ran = 0u32;
        let g = int_range(0, 100);
        Runner::with_cases(40).run("all_in_range", &g, |v| {
            ran += 1;
            prop_assert!((0..100).contains(v));
            Ok(())
        });
        assert_eq!(ran, 40);
    }

    #[test]
    fn failing_property_reports_seed_and_shrinks() {
        let g = vec_of(int_range(0, 1000), 40);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Runner::with_cases(100).run("has_no_long_vecs", &g, |v| {
                prop_assert!(v.len() < 3, "len {} >= 3", v.len());
                Ok(())
            });
        }))
        .expect_err("property should fail");
        let msg = caught
            .downcast_ref::<String>()
            .expect("panic carries a String");
        assert!(msg.contains("case seed"), "no seed in: {msg}");
        assert!(msg.contains("MST_PROP_SEED="), "no repro hint in: {msg}");
        // Shrinking halves the size budget, so the reported counterexample
        // must be close to the len == 3 boundary, not a full 40-vector.
        assert!(msg.contains("size"), "no size in: {msg}");
    }

    #[test]
    fn runs_are_deterministic() {
        let g = vec_of(tuple2(int_range(-50, 50), lowercase_string(6)), 10);
        let sample = |seed| {
            let mut out = Vec::new();
            Runner::with_cases(20).seed(seed).run("collect", &g, |v| {
                out.push(format!("{v:?}"));
                Ok(())
            });
            out
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn recursive_generator_terminates_and_shrinks_flat() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!((0..10).contains(v), "leaf {v} out of range");
                    0
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let leaf = int_range(0, 10).map(Tree::Leaf);
        let tree = recursive(leaf, 4, |inner| {
            tuple2(inner.clone(), inner).map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = SplitMix64::new(1);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = tree.generate(&mut rng, DEFAULT_SIZE);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(..));
            // At size 1 the descent probability is ~1%, so trees are flat.
            assert!(depth(&tree.generate(&mut rng, 1)) <= 1);
        }
        assert!(saw_node, "200 samples produced no interior node");
    }
}
