//! Fault-isolated multi-tenant request serving.
//!
//! The paper's thesis is a *shared interactive environment*: many users on
//! one machine, each insulated from the others' pauses and faults. This
//! crate is that environment's front end. Each tenant owns an isolated
//! session — a full [`MsSystem`] spawned copy-on-load from a shared
//! [`SnapshotTemplate`] — and every doit is a request executed under an
//! enforced deadline. Sessions share only the immutable image bytes, so a
//! fault in one tenant cannot corrupt another.
//!
//! The robustness envelope, per request:
//!
//! 1. **Admission control + backpressure** — a bounded per-tenant queue.
//!    Requests beyond the queue cap, behind too long a queue delay, or
//!    arriving under memory pressure are rejected *up front* with a
//!    structured [`Reject`] reason (the HTTP-429 shape) instead of joining
//!    an unbounded latency collapse.
//! 2. **Deadline enforcement** — the per-request budget is armed on the
//!    session VM and checked at safepoint polls; an expired doit is
//!    terminated through the same containment route as `outOfMemory`,
//!    leaving the session consistent (`audit_heap` stays clean).
//! 3. **Crash-only recovery** — a panic inside the session (including the
//!    chaos `serve.panic` mid-doit kill) is caught at the session boundary.
//!    The whole session is discarded and respawned from its checkpoint or
//!    the template with an incremented epoch; other tenants never observe
//!    the fault.
//! 4. **Graceful degradation** — when a session loses supervised
//!    processors or its LowSpaceSemaphore fires, the server shrinks that
//!    tenant's eden budget and halves its admission cap (shedding load)
//!    rather than failing requests outright.
//!
//! Session lifecycle (see DESIGN.md for the full state machine):
//!
//! ```text
//! Cold --first request--> Ready --execute--> Executing --ok--> Ready
//!   Executing --panic--> Crashed --respawn (epoch+1)--> Ready
//!   Ready --pressure--> Degraded (shrunken eden, halved cap) --> Ready
//! ```
//!
//! Chaos: the `serve.drop`, `serve.slow` and `serve.panic` fault sites
//! ([`mst_vkernel::fault`]) are consulted only for the configured *victim*
//! tenant ([`Server::set_victim`]), so a soak can prove the blast radius of
//! a misbehaving tenant stays confined to it.
//!
//! **Durability** (the [`store`] module): when a checkpoint directory is
//! configured, every tenant's checkpoints are versioned files committed
//! through an append-only, CRC'd `MANIFEST` journal. A [`CheckpointPolicy`]
//! takes checkpoints at quiescent points (after a completed doit, holding
//! only that tenant's lock), and [`Server::recover`] reconstructs the whole
//! fleet — epochs, restart counts, sessions — from the directory alone
//! after a process death. The `ckpt.crash` / `ckpt.torn_manifest` /
//! `ckpt.slow` fault sites simulate deaths inside the commit protocol
//! itself; the `crashrec` bench drives recovery across hundreds of them.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use mst_core::{EvalError, MsConfig, MsSystem, SnapshotTemplate, Value};
use mst_telemetry as tel;
use mst_vkernel::fault;

pub mod store;

pub use store::{chains_from_records, scan_manifest, CheckpointStore, Commit, Record, StoreError};

/// When the server takes checkpoints on its own (on-demand
/// [`Server::checkpoint`] always works regardless). Checkpoints are taken
/// at quiescent points — after a completed doit, holding only that
/// tenant's session lock — so one tenant checkpointing never blocks
/// another's requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheckpointPolicy {
    /// Checkpoint a tenant after every N successful requests.
    pub every_requests: Option<u64>,
    /// Checkpoint a tenant the moment it transitions into degraded mode
    /// (the session may be about to get worse; capture it while it is
    /// still consistent).
    pub on_degrade: bool,
}

/// Serving-layer policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Virtual processors per tenant session (the main interpreter plus
    /// `processors - 1` supervised workers).
    pub processors: usize,
    /// Per-request wall-clock budget; expired doits are terminated at the
    /// next safepoint poll.
    pub deadline: Duration,
    /// Admission: maximum requests queued (waiting or executing) per
    /// tenant; the cap halves while a tenant is degraded.
    pub queue_cap: usize,
    /// Admission: a request that waited longer than this for its session
    /// is rejected (queue-delay backpressure).
    pub queue_wait_limit: Duration,
    /// Eden budget (words) a degraded session shrinks to.
    pub degraded_eden_words: usize,
    /// How long the chaos `serve.slow` fault stalls the victim tenant.
    pub slow_stall: Duration,
    /// Directory for per-tenant checkpoints ([`Server::checkpoint`]);
    /// recovery prefers a checkpoint over the template when present. With
    /// a directory configured the server runs a durable
    /// [`CheckpointStore`] there: versioned images committed through the
    /// `MANIFEST` journal.
    pub checkpoint_dir: Option<PathBuf>,
    /// Automatic checkpoint policy (applies only with `checkpoint_dir`).
    pub checkpoint: CheckpointPolicy,
    /// Committed checkpoints retained per tenant (clamped to ≥ 1; the
    /// newest committed entry is never pruned).
    pub retain: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            processors: 2,
            deadline: Duration::from_secs(2),
            queue_cap: 4,
            queue_wait_limit: Duration::from_millis(500),
            degraded_eden_words: 16 << 10,
            slow_stall: Duration::from_millis(20),
            checkpoint_dir: None,
            checkpoint: CheckpointPolicy::default(),
            retain: 2,
        }
    }
}

/// Why admission control refused a request (the 429-style structured
/// reason).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reject {
    /// The tenant's queue (waiting + executing) is at its cap.
    QueueFull {
        /// Requests already queued.
        queued: usize,
        /// The effective cap (halved while degraded).
        cap: usize,
    },
    /// The request waited longer than the configured limit for its session.
    QueueDelay {
        /// How long it waited.
        waited: Duration,
        /// The configured limit.
        limit: Duration,
    },
    /// The session's LowSpaceSemaphore pressure latch is set and another
    /// request is already in flight; load is shed until space recovers.
    MemoryPressure,
}

impl std::fmt::Display for Reject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Reject::QueueFull { queued, cap } => {
                write!(f, "queue full ({queued} queued, cap {cap})")
            }
            Reject::QueueDelay { waited, limit } => {
                write!(f, "queue delay {waited:?} over limit {limit:?}")
            }
            Reject::MemoryPressure => f.write_str("memory pressure"),
        }
    }
}

/// A failed request.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control refused the request; retry after backoff.
    Rejected(Reject),
    /// The request was dropped before execution (chaos `serve.drop`).
    Dropped,
    /// The doit ran past its deadline and was terminated; the session
    /// remains consistent and keeps serving.
    DeadlineExpired,
    /// The doit failed in the image (an `error:` report).
    Runtime(String),
    /// The session crashed while executing this request and was respawned
    /// at the given epoch; retry lands on the fresh session.
    SessionCrashed {
        /// The epoch of the respawned session.
        epoch: u64,
    },
    /// The tenant id does not exist.
    NoSuchTenant(usize),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "rejected: {r}"),
            ServeError::Dropped => f.write_str("request dropped"),
            ServeError::DeadlineExpired => f.write_str("deadline expired"),
            ServeError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            ServeError::SessionCrashed { epoch } => {
                write!(f, "session crashed; respawned at epoch {epoch}")
            }
            ServeError::NoSuchTenant(t) => write!(f, "no such tenant {t}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful request.
#[derive(Debug)]
pub struct Response {
    /// The doit's value.
    pub value: Value,
    /// Wall-clock latency, admission to result.
    pub latency: Duration,
    /// The epoch of the session that served it (bumped by every respawn).
    pub epoch: u64,
}

/// One tenant's session slot. `None` until the first request (Cold) and
/// momentarily during a crash respawn.
struct Slot {
    ms: Option<MsSystem>,
}

struct Tenant {
    id: usize,
    slot: Mutex<Slot>,
    /// Requests waiting for or holding the session lock.
    queued: AtomicUsize,
    /// Session generation: bumped by every spawn/respawn.
    epoch: AtomicU64,
    /// Crash respawns (epoch minus the initial spawn).
    restarts: AtomicU64,
    /// 1 while the session is degraded (shrunken eden, halved cap).
    degraded: AtomicUsize,
    /// Successful requests since the last checkpoint (drives
    /// [`CheckpointPolicy::every_requests`]).
    since_ckpt: AtomicU64,
}

/// Decrements the tenant's queue depth when a request leaves (including
/// every early-reject path).
struct QueueGuard<'a>(&'a AtomicUsize);

impl Drop for QueueGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The multi-tenant server: N isolated sessions over one shared template.
pub struct Server {
    template: SnapshotTemplate,
    base: MsConfig,
    cfg: ServeConfig,
    tenants: Vec<Tenant>,
    /// Durable checkpoint store, present iff `cfg.checkpoint_dir` is.
    store: Option<CheckpointStore>,
    /// Chaos victim tenant (`usize::MAX` = none): the only tenant for
    /// which the `serve.*` fault sites are consulted.
    victim: AtomicUsize,
}

/// Where a tenant's session came from during [`Server::recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// Restored from a committed checkpoint at this epoch (the newest
    /// loadable entry in the tenant's manifest chain).
    Checkpoint {
        /// The committed epoch the session resumed at.
        epoch: u64,
    },
    /// Every committed checkpoint failed to load; respawned from the
    /// template at (newest committed epoch + 1).
    Template,
    /// The tenant had no committed checkpoints; left cold.
    Cold,
}

/// One tenant's recovery outcome.
#[derive(Debug, Clone, Copy)]
pub struct TenantRecovery {
    /// The tenant id.
    pub tenant: usize,
    /// Where the session came from.
    pub source: RecoverySource,
    /// Wall-clock nanoseconds spent recovering this tenant.
    pub duration_ns: u64,
}

/// What [`Server::recover`] did, tenant by tenant.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Per-tenant outcomes, in tenant-id order.
    pub tenants: Vec<TenantRecovery>,
    /// Total wall-clock nanoseconds for the whole recovery.
    pub total_ns: u64,
}

impl Server {
    /// Builds a server with `tenants` cold sessions over `template`.
    /// `base` supplies the strategy/memory configuration every session
    /// boots with (its `processors` field is overridden by
    /// `cfg.processors`).
    pub fn new(
        template: SnapshotTemplate,
        base: MsConfig,
        cfg: ServeConfig,
        tenants: usize,
    ) -> Server {
        assert!(tenants > 0, "a server needs at least one tenant");
        assert!(cfg.queue_cap > 0, "queue_cap must be positive");
        // Losing the checkpoint store means losing durability silently —
        // exactly the failure mode this layer exists to remove — so a
        // store that cannot open is a construction error, not a warning.
        let store = cfg.checkpoint_dir.as_ref().map(|dir| {
            CheckpointStore::open(dir, cfg.retain)
                .unwrap_or_else(|e| panic!("checkpoint store at {}: {e}", dir.display()))
        });
        let tenants = (0..tenants)
            .map(|id| {
                // Seed epochs/restarts from the manifest so generation
                // counters stay monotonic across process lifetimes: the
                // next spawn lands above every committed epoch.
                let newest = store.as_ref().and_then(|s| s.newest(id as u64));
                Tenant {
                    id,
                    slot: Mutex::new(Slot { ms: None }),
                    queued: AtomicUsize::new(0),
                    epoch: AtomicU64::new(newest.map_or(0, |c| c.epoch)),
                    restarts: AtomicU64::new(newest.map_or(0, |c| c.restarts)),
                    degraded: AtomicUsize::new(0),
                    since_ckpt: AtomicU64::new(0),
                }
            })
            .collect();
        Server {
            template,
            base,
            cfg,
            tenants,
            store,
            victim: AtomicUsize::new(usize::MAX),
        }
    }

    /// Reconstructs a whole server — sessions, epochs, restart counts —
    /// from its checkpoint directory after a process death. Every tenant
    /// with committed checkpoints is eagerly restored from the newest
    /// loadable entry in its manifest chain (falling down the chain past
    /// corrupt images, then to the template); tenants that never
    /// checkpointed stay cold. Records the `serve.ckpt.recovery_ns`
    /// histogram and returns a per-tenant [`RecoveryReport`].
    pub fn recover(
        template: SnapshotTemplate,
        base: MsConfig,
        cfg: ServeConfig,
        tenants: usize,
    ) -> (Server, RecoveryReport) {
        let t0 = tel::now_ns();
        let server = Server::new(template, base, cfg, tenants);
        let mut report = RecoveryReport::default();
        for t in &server.tenants {
            let tt0 = tel::now_ns();
            let source = server.recover_tenant(t);
            let duration_ns = tel::now_ns().saturating_sub(tt0);
            tel::histogram("serve.ckpt.tenant_recovery_ns").record(duration_ns);
            report.tenants.push(TenantRecovery {
                tenant: t.id,
                source,
                duration_ns,
            });
        }
        report.total_ns = tel::now_ns().saturating_sub(t0);
        tel::histogram("serve.ckpt.recovery_ns").record(report.total_ns);
        (server, report)
    }

    /// Restores one tenant's session during [`recover`](Self::recover):
    /// newest chain entry → older entries → template → cold.
    fn recover_tenant(&self, t: &Tenant) -> RecoverySource {
        let Some(store) = &self.store else {
            return RecoverySource::Cold;
        };
        let chain = store.chain(t.id as u64);
        let Some(newest_epoch) = chain.first().map(|c| c.epoch) else {
            return RecoverySource::Cold;
        };
        let config = MsConfig {
            processors: self.cfg.processors,
            ..self.base
        };
        for commit in &chain {
            let loaded = store
                .read_image(commit)
                .ok()
                .and_then(|bytes| MsSystem::from_snapshot(&mut &bytes[..], config).ok());
            match loaded {
                Some(ms) => {
                    t.epoch.store(commit.epoch, Ordering::Relaxed);
                    t.restarts.store(commit.restarts, Ordering::Relaxed);
                    t.degraded.store(0, Ordering::Relaxed);
                    t.since_ckpt.store(0, Ordering::Relaxed);
                    lock_slot(&t.slot).ms = Some(ms);
                    tel::counter("serve.ckpt.recovered").incr();
                    return RecoverySource::Checkpoint {
                        epoch: commit.epoch,
                    };
                }
                None => tel::counter("serve.checkpoint_fallback").incr(),
            }
        }
        // Every committed image was unreadable: the chain is evidence of
        // the tenant's existence but not of its state. Fresh session from
        // the template, one generation above everything committed.
        let ms = MsSystem::from_template(&self.template, config)
            .expect("template was validated at build time");
        t.epoch.store(newest_epoch + 1, Ordering::Relaxed);
        lock_slot(&t.slot).ms = Some(ms);
        RecoverySource::Template
    }

    /// The durable checkpoint store, when a directory is configured.
    pub fn store(&self) -> Option<&CheckpointStore> {
        self.store.as_ref()
    }

    /// Number of tenants.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Marks `tenant` as the chaos victim (or clears it with `None`): the
    /// `serve.drop` / `serve.slow` / `serve.panic` fault sites fire only
    /// inside its requests.
    pub fn set_victim(&self, tenant: Option<usize>) {
        self.victim
            .store(tenant.unwrap_or(usize::MAX), Ordering::Relaxed);
    }

    /// The session epoch of `tenant` (0 = still cold).
    pub fn epoch(&self, tenant: usize) -> u64 {
        self.tenants[tenant].epoch.load(Ordering::Relaxed)
    }

    /// How many times `tenant`'s session crashed and was respawned.
    pub fn restarts(&self, tenant: usize) -> u64 {
        self.tenants[tenant].restarts.load(Ordering::Relaxed)
    }

    /// Whether `tenant` is currently degraded.
    pub fn degraded(&self, tenant: usize) -> bool {
        self.tenants[tenant].degraded.load(Ordering::Relaxed) != 0
    }

    /// Executes `source` as a doit in `tenant`'s session under the
    /// configured deadline, applying admission control first.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rejected`] from admission control (retryable);
    /// [`ServeError::DeadlineExpired`] / [`ServeError::Runtime`] for doit
    /// failures (the session keeps serving); [`ServeError::SessionCrashed`]
    /// when the session died and was respawned (retry lands on the fresh
    /// epoch); [`ServeError::Dropped`] for the chaos drop fault.
    pub fn request(&self, tenant: usize, source: &str) -> Result<Response, ServeError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or(ServeError::NoSuchTenant(tenant))?;
        let start = Instant::now();
        tel::counter("serve.requests").incr();

        // Admission: bounded queue. The effective cap halves while the
        // session is degraded (load shedding).
        let queued = t.queued.fetch_add(1, Ordering::Relaxed) + 1;
        let queue = QueueGuard(&t.queued);
        let cap = if t.degraded.load(Ordering::Relaxed) != 0 {
            (self.cfg.queue_cap / 2).max(1)
        } else {
            self.cfg.queue_cap
        };
        if queued > cap {
            tel::counter("serve.rejected").incr();
            return Err(ServeError::Rejected(Reject::QueueFull {
                queued: queued - 1,
                cap,
            }));
        }

        // Admission: queue-delay backpressure. The wait for the session
        // lock *is* the queue delay; a request that waited past the limit
        // is shed even though the session just became available — serving
        // it would only push the collapse onto the requests behind it.
        let mut slot = lock_slot(&t.slot);
        let waited = start.elapsed();
        tel::histogram("serve.queue_wait_ns").record(waited.as_nanos() as u64);
        if waited > self.cfg.queue_wait_limit {
            tel::counter("serve.rejected").incr();
            return Err(ServeError::Rejected(Reject::QueueDelay {
                waited,
                limit: self.cfg.queue_wait_limit,
            }));
        }

        let is_victim = self.victim.load(Ordering::Relaxed) == t.id;
        // Chaos: drop the request before it touches the session.
        if is_victim && fault::serve_drop() {
            tel::counter("serve.dropped").incr();
            return Err(ServeError::Dropped);
        }

        // Cold start: spawn the session from checkpoint/template.
        if slot.ms.is_none() {
            slot.ms = Some(self.spawn_session(t));
        }
        // The borrow lives for the execution; on crash we take it out.
        let ms = slot.ms.as_mut().expect("session just spawned");

        // Graceful degradation: losing a supervised processor or tripping
        // the low-space latch shrinks this tenant's eden budget and halves
        // its admission cap instead of failing its requests.
        let pressure = ms.low_space();
        let shrunk = ms.processors_online() < self.cfg.processors.saturating_sub(1);
        if (pressure || shrunk) && t.degraded.swap(1, Ordering::Relaxed) == 0 {
            ms.set_eden_budget(self.cfg.degraded_eden_words);
            tel::counter("serve.degraded").incr();
            // Policy: capture the session while it is still consistent —
            // degradation means it may be about to get worse. Quiescent
            // (no doit is running) and only this tenant's lock is held.
            if self.cfg.checkpoint.on_degrade && self.store.is_some() {
                tel::counter("serve.ckpt.auto").incr();
                let _ = self.commit_session(t, ms);
            }
        }
        // Admission: memory pressure. One request may proceed (the tenant
        // must keep making progress for space to recover) but concurrent
        // load is shed.
        if pressure && queued > 1 {
            tel::counter("serve.rejected").incr();
            return Err(ServeError::Rejected(Reject::MemoryPressure));
        }

        // Chaos: a slow tenant stalls inside its own session, holding only
        // its own lock — other tenants' latency must not move.
        if is_victim && fault::serve_slow() {
            std::thread::sleep(self.cfg.slow_stall);
        }
        // Chaos: arm the mid-doit panic; the session's interpreter panics
        // at a safepoint *inside* the doit.
        if is_victim && fault::serve_panic() {
            ms.vm().inject_doit_panic();
        }

        let deadline = self.cfg.deadline;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let prepared = ms.prepare(source)?;
            ms.run_prepared_with_deadline(&prepared, deadline)
        }));
        let epoch = t.epoch.load(Ordering::Relaxed);
        match outcome {
            Ok(Ok(value)) => {
                let latency = start.elapsed();
                let ns = latency.as_nanos() as u64;
                tel::histogram("serve.request.latency_ns").record(ns);
                tel::histogram(&format!("serve.tenant{}.latency_ns", t.id)).record(ns);
                tel::counter("serve.ok").incr();
                self.maybe_auto_checkpoint(t, &slot);
                drop(queue);
                Ok(Response {
                    value,
                    latency,
                    epoch,
                })
            }
            Ok(Err(EvalError::Runtime(msg))) if msg.starts_with("deadlineExpired") => {
                tel::counter("serve.deadline_expired").incr();
                Err(ServeError::DeadlineExpired)
            }
            Ok(Err(e)) => Err(ServeError::Runtime(e.to_string())),
            Err(_panic) => {
                // Crash-only recovery: the session is gone as a unit. Drop
                // it (shutting down and joining its workers), respawn from
                // checkpoint/template, bump the epoch. Only this tenant's
                // lock is held throughout — the blast radius is one tenant.
                tel::counter("serve.session_crashes").incr();
                slot.ms = None;
                t.restarts.fetch_add(1, Ordering::Relaxed);
                slot.ms = Some(self.spawn_session(t));
                Err(ServeError::SessionCrashed {
                    epoch: t.epoch.load(Ordering::Relaxed),
                })
            }
        }
    }

    /// Takes a crash-consistent, manifest-committed checkpoint of
    /// `tenant`'s session on demand, returning the durable image path;
    /// later crash respawns and [`Server::recover`] restore from it
    /// instead of the template.
    ///
    /// # Errors
    ///
    /// [`ServeError::Runtime`] if no checkpoint directory is configured,
    /// the tenant is cold, or the commit fails (counted in
    /// `serve.ckpt.failures`; the previously committed chain is
    /// untouched).
    pub fn checkpoint(&self, tenant: usize) -> Result<PathBuf, ServeError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or(ServeError::NoSuchTenant(tenant))?;
        let slot = lock_slot(&t.slot);
        let Some(ms) = slot.ms.as_ref() else {
            return Err(ServeError::Runtime("tenant is cold".into()));
        };
        tel::counter("serve.ckpt.on_demand").incr();
        self.commit_session(t, ms)
    }

    /// Runs a full heap audit on `tenant`'s live session (the crashrec
    /// harness verifies recovered sessions with this).
    ///
    /// # Errors
    ///
    /// [`ServeError::Runtime`] when the tenant is cold — there is no heap
    /// to audit.
    pub fn audit(&self, tenant: usize) -> Result<mst_objmem::HeapAudit, ServeError> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or(ServeError::NoSuchTenant(tenant))?;
        let slot = lock_slot(&t.slot);
        match slot.ms.as_ref() {
            Some(ms) => Ok(ms.audit_heap()),
            None => Err(ServeError::Runtime("tenant is cold".into())),
        }
    }

    /// Serializes `t`'s session and commits it through the store (stops
    /// that session's world for the save; no other tenant blocks).
    fn commit_session(&self, t: &Tenant, ms: &MsSystem) -> Result<PathBuf, ServeError> {
        let Some(store) = &self.store else {
            return Err(ServeError::Runtime("no checkpoint directory".into()));
        };
        let t0 = tel::now_ns();
        let mut image = Vec::new();
        let result = ms
            .save_snapshot(&mut image)
            .map_err(|e| ServeError::Runtime(format!("checkpoint: {e}")))
            .and_then(|()| {
                store
                    .commit(
                        t.id as u64,
                        t.epoch.load(Ordering::Relaxed),
                        t.restarts.load(Ordering::Relaxed),
                        &image,
                    )
                    .map_err(|e| ServeError::Runtime(format!("checkpoint: {e}")))
            });
        match &result {
            Ok(_) => {
                t.since_ckpt.store(0, Ordering::Relaxed);
                tel::histogram("serve.ckpt.save_ns").record(tel::now_ns().saturating_sub(t0));
            }
            Err(_) => tel::counter("serve.ckpt.failures").incr(),
        }
        result
    }

    /// Applies [`CheckpointPolicy::every_requests`] at the quiescent
    /// point after a completed doit, still holding only this tenant's
    /// session lock.
    fn maybe_auto_checkpoint(&self, t: &Tenant, slot: &Slot) {
        if self.store.is_none() {
            return;
        }
        let Some(n) = self.cfg.checkpoint.every_requests else {
            return;
        };
        let since = t.since_ckpt.fetch_add(1, Ordering::Relaxed) + 1;
        if since < n.max(1) {
            return;
        }
        let Some(ms) = slot.ms.as_ref() else {
            return;
        };
        tel::counter("serve.ckpt.auto").incr();
        let _ = self.commit_session(t, ms);
    }

    /// Spawns a fresh session for `t`: newest → oldest down the committed
    /// checkpoint chain, then the legacy single-file checkpoint, then
    /// copy-on-load from the shared template. Bumps the tenant epoch.
    fn spawn_session(&self, t: &Tenant) -> MsSystem {
        t.epoch.fetch_add(1, Ordering::Relaxed);
        t.degraded.store(0, Ordering::Relaxed);
        t.since_ckpt.store(0, Ordering::Relaxed);
        let config = MsConfig {
            processors: self.cfg.processors,
            ..self.base
        };
        if let Some(store) = &self.store {
            for commit in store.chain(t.id as u64) {
                let loaded = store
                    .read_image(&commit)
                    .ok()
                    .and_then(|bytes| MsSystem::from_snapshot(&mut &bytes[..], config).ok());
                match loaded {
                    Some(ms) => return ms,
                    // A corrupt or unloadable checkpoint must not wedge
                    // recovery: fall down the chain toward the template.
                    None => tel::counter("serve.checkpoint_fallback").incr(),
                }
            }
        }
        if let Some(dir) = &self.cfg.checkpoint_dir {
            // Legacy pre-manifest layout: one unversioned image. Probe by
            // *attempting* the load — a `path.exists()` pre-check races
            // with a concurrent replace (TOCTOU) and cannot tell "no
            // checkpoint" from "checkpoint present but unreadable".
            let path = dir.join(format!("tenant{}.image", t.id));
            match MsSystem::from_snapshot_file(&path, config) {
                Ok(ms) => return ms,
                Err(e) if e.is_not_found() => {} // never checkpointed: silent
                Err(_) => tel::counter("serve.checkpoint_fallback").incr(),
            }
        }
        MsSystem::from_template(&self.template, config)
            .expect("template was validated at build time")
    }
}

fn lock_slot(m: &Mutex<Slot>) -> MutexGuard<'_, Slot> {
    // A panic inside `request` can poison the mutex, but every panic path
    // leaves the slot in a recoverable state (`None` or a live session),
    // so the poison flag carries no information here.
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Seeded exponential backoff with jitter for request retry loops (the
/// client half of the backpressure protocol). Deterministic in its seed.
#[derive(Debug)]
pub struct Backoff {
    rng: mst_vkernel::SplitMix64,
    base: Duration,
    max: Duration,
    attempt: u32,
}

impl Backoff {
    /// A policy starting at `base` and capping each delay at `max`.
    pub fn new(seed: u64, base: Duration, max: Duration) -> Backoff {
        Backoff {
            rng: mst_vkernel::SplitMix64::new(seed),
            base,
            max,
            attempt: 0,
        }
    }

    /// The next delay: `base * 2^attempt`, capped at `max`, with uniform
    /// jitter over the full range ("full jitter"), so retry storms from
    /// many clients decorrelate.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(16);
        self.attempt += 1;
        let ceil_ns = self
            .base
            .as_nanos()
            .saturating_mul(1u128 << exp)
            .min(self.max.as_nanos())
            .max(1) as u64;
        Duration::from_nanos(self.rng.gen_range(0, ceil_ns) + 1)
    }

    /// Resets the policy after a success.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send<T: Send>() {}

    #[test]
    fn server_is_shareable_across_threads() {
        assert_send::<Server>();
        fn assert_sync<T: Sync>() {}
        assert_sync::<Server>();
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let base = Duration::from_millis(1);
        let max = Duration::from_millis(50);
        let mut a = Backoff::new(7, base, max);
        let mut b = Backoff::new(7, base, max);
        let da: Vec<_> = (0..10).map(|_| a.next_delay()).collect();
        let db: Vec<_> = (0..10).map(|_| b.next_delay()).collect();
        assert_eq!(da, db, "same seed, same schedule");
        assert!(da.iter().all(|d| *d <= max + Duration::from_nanos(1)));
        let mut c = Backoff::new(8, base, max);
        assert!(c.next_delay() <= base + Duration::from_nanos(1));
        c.reset();
        assert_eq!(c.attempt, 0);
    }

    #[test]
    fn reject_and_error_display() {
        let r = Reject::QueueFull { queued: 4, cap: 4 };
        assert!(r.to_string().contains("queue full"));
        let e = ServeError::SessionCrashed { epoch: 3 };
        assert!(e.to_string().contains("epoch 3"));
        assert!(ServeError::Rejected(Reject::MemoryPressure)
            .to_string()
            .contains("memory pressure"));
    }
}
