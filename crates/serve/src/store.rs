//! Durable, manifest-committed checkpoint store.
//!
//! A Smalltalk environment *is* its image: the paper's programming model
//! assumes the image survives anything the processors do to it. The
//! serving layer's original checkpoint path overwrote one
//! `tenant{id}.image` in place with no commit record and no retention — a
//! crash mid-overwrite could cost a tenant its only checkpoint, and a
//! process death lost every tenant's epoch/restart state. This module is
//! the durable replacement, following the multicomputer-object-store
//! playbook (PAPERS.md): versioned checkpoint files committed through an
//! append-only journal.
//!
//! # On-disk layout
//!
//! ```text
//! <dir>/MANIFEST               append-only, CRC-framed commit journal
//! <dir>/tenant{N}.e{E}.image   checkpoint image for tenant N, epoch E
//! <dir>/*.tmp                  in-flight writes (removed on open)
//! ```
//!
//! # Commit protocol
//!
//! A checkpoint exists only once its MANIFEST record is durable:
//!
//! 1. write the image bytes to `tenant{N}.e{E}.image.tmp`, fsync;
//! 2. rename over `tenant{N}.e{E}.image`, fsync the directory;
//! 3. append a CRC-framed [`Commit`] record to `MANIFEST`, fsync.
//!
//! A crash before step 3 leaves at worst a torn temp file or an orphan
//! image that no record names — invisible to recovery and reclaimed by
//! the next [`CheckpointStore::open`]. A crash *during* step 3 leaves a
//! torn final record; the scan keeps the journal's valid prefix and drops
//! the tail. Either way, every previously committed checkpoint survives.
//!
//! # Recovery scan
//!
//! [`scan_manifest`] is a pure function over the journal bytes: it walks
//! `[u32 len][u32 crc][payload]` frames from the start, stops at the
//! first torn or corrupt frame (counted in `serve.ckpt.manifest_torn`),
//! and never panics. Records replay into per-tenant chains, newest first;
//! [`Prune`](Record::Prune) records drop what retention already deleted.
//! Recovery then walks each chain newest → oldest (length- and
//! CRC-verifying every image before trusting it) and falls back to the
//! session template only when no committed checkpoint loads.
//!
//! # Retention
//!
//! [`commit`](CheckpointStore::commit) keeps the newest `retain`
//! checkpoints per tenant: older image files are deleted after a `Prune`
//! record is durably appended, so the journal never names a file that
//! retention still needs. Pruning never touches the newest committed
//! entry (`retain` is clamped to ≥ 1). When the journal outgrows
//! [`COMPACT_BYTES`] it is compacted — rewritten with only live records
//! via the same temp + fsync + rename discipline.
//!
//! Chaos: the `ckpt.crash` and `ckpt.torn_manifest` fault sites
//! ([`mst_vkernel::fault`]) abandon step 1 or tear step 3 at a seeded
//! byte boundary, leaving the directory exactly as a process death would;
//! `ckpt.slow` stalls the write. The `crashrec` bench drives recovery
//! across hundreds of such deaths.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use mst_telemetry as tel;
use mst_vkernel::crc::crc32;
use mst_vkernel::fault;

/// Journal header: identifies a checkpoint MANIFEST.
const MANIFEST_MAGIC: &[u8; 8] = b"MSTCKPT1";
/// Largest frame payload the scanner will believe; real records are tens
/// of bytes, so anything larger is corruption (or a torn length word).
const MAX_PAYLOAD: u32 = 256;
/// Journal size that triggers compaction on the next commit.
const COMPACT_BYTES: u64 = 1 << 20;

const KIND_COMMIT: u8 = 1;
const KIND_PRUNE: u8 = 2;

/// One committed checkpoint: the payload of a MANIFEST commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commit {
    /// Tenant the checkpoint belongs to.
    pub tenant: u64,
    /// Session epoch the image was taken at.
    pub epoch: u64,
    /// Tenant crash-restart count at commit time (recovered along with
    /// the epoch after a process death).
    pub restarts: u64,
    /// Exact image file length, verified before the image is trusted.
    pub file_len: u64,
    /// CRC-32 of the image bytes, verified before the image is trusted.
    pub file_crc: u32,
}

impl Commit {
    /// The checkpoint's image file name: `tenant{N}.e{E}.image`.
    pub fn file_name(&self) -> String {
        format!("tenant{}.e{}.image", self.tenant, self.epoch)
    }
}

/// A decoded MANIFEST record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// A checkpoint became durable.
    Commit(Commit),
    /// Retention deleted this tenant's checkpoints with `epoch <
    /// upto_epoch`; the scan must stop resurrecting them.
    Prune {
        /// Tenant whose old checkpoints were deleted.
        tenant: u64,
        /// Exclusive epoch bound: strictly older entries are gone.
        upto_epoch: u64,
    },
}

/// A checkpoint-store failure. I/O and injected crashes surface here; the
/// recovery scan itself never fails (it degrades to shorter chains).
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failed; `ctx` names the step.
    Io {
        /// Which step failed (`"image write"`, `"manifest append"`, …).
        ctx: &'static str,
        /// The underlying error.
        source: io::Error,
    },
    /// A chaos site abandoned the write mid-way (simulated process
    /// death); the on-disk state is exactly what a real crash leaves.
    Injected {
        /// The fault site that fired (`"ckpt.crash"`, …).
        site: &'static str,
        /// The byte boundary the write was abandoned at.
        boundary: u64,
    },
    /// An image file disagrees with its commit record (wrong length or
    /// CRC) — corruption after commit, detected before the bytes are
    /// trusted.
    ImageMismatch {
        /// The offending file.
        path: PathBuf,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { ctx, source } => write!(f, "checkpoint {ctx} failed: {source}"),
            StoreError::Injected { site, boundary } => {
                write!(
                    f,
                    "checkpoint abandoned at byte {boundary} ({site} injected)"
                )
            }
            StoreError::ImageMismatch { path, detail } => {
                write!(f, "checkpoint image {} corrupt: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(ctx: &'static str) -> impl FnOnce(io::Error) -> StoreError {
    move |source| StoreError::Io { ctx, source }
}

// ---------------------------------------------------------------------------
// Record encoding

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Encodes a record as a `[u32 len][u32 crc][payload]` frame.
fn encode_frame(record: &Record) -> Vec<u8> {
    let mut payload = Vec::with_capacity(48);
    match record {
        Record::Commit(c) => {
            payload.push(KIND_COMMIT);
            put_u64(&mut payload, c.tenant);
            put_u64(&mut payload, c.epoch);
            put_u64(&mut payload, c.restarts);
            put_u64(&mut payload, c.file_len);
            put_u64(&mut payload, c.file_crc as u64);
        }
        Record::Prune { tenant, upto_epoch } => {
            payload.push(KIND_PRUNE);
            put_u64(&mut payload, *tenant);
            put_u64(&mut payload, *upto_epoch);
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

fn get_u64(payload: &[u8], pos: &mut usize) -> Option<u64> {
    let bytes = payload.get(*pos..*pos + 8)?;
    *pos += 8;
    Some(u64::from_le_bytes(bytes.try_into().unwrap()))
}

/// Decodes one frame payload; `None` means a structurally invalid record.
fn decode_payload(payload: &[u8]) -> Option<Record> {
    let kind = *payload.first()?;
    let mut pos = 1;
    let record = match kind {
        KIND_COMMIT => Record::Commit(Commit {
            tenant: get_u64(payload, &mut pos)?,
            epoch: get_u64(payload, &mut pos)?,
            restarts: get_u64(payload, &mut pos)?,
            file_len: get_u64(payload, &mut pos)?,
            file_crc: u32::try_from(get_u64(payload, &mut pos)?).ok()?,
        }),
        KIND_PRUNE => Record::Prune {
            tenant: get_u64(payload, &mut pos)?,
            upto_epoch: get_u64(payload, &mut pos)?,
        },
        _ => return None,
    };
    (pos == payload.len()).then_some(record)
}

/// What a manifest scan found.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every valid record, in journal order.
    pub records: Vec<Record>,
    /// Bytes of the journal that form the valid prefix (header + whole,
    /// checksummed frames). Everything past this is a torn or corrupt
    /// tail.
    pub valid_len: usize,
    /// Whether a torn/corrupt tail (or a bad header) was found and
    /// dropped.
    pub torn: bool,
}

/// Walks MANIFEST bytes, collecting the valid record prefix. Tolerates a
/// missing header, torn frames, corrupt checksums and garbage lengths by
/// stopping at the first invalid byte — it never panics and never reads
/// past what the checksums vouch for.
pub fn scan_manifest(bytes: &[u8]) -> Scan {
    let mut scan = Scan::default();
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        scan.torn = !bytes.is_empty();
        return scan;
    }
    let mut pos = MANIFEST_MAGIC.len();
    loop {
        let Some(header) = bytes.get(pos..pos + 8) else {
            // Torn mid-frame-header (or clean EOF when pos == len).
            scan.torn = pos != bytes.len();
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_PAYLOAD {
            scan.torn = true;
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            scan.torn = true; // torn mid-payload
            break;
        };
        if crc32(payload) != crc {
            scan.torn = true;
            break;
        }
        let Some(record) = decode_payload(payload) else {
            scan.torn = true;
            break;
        };
        scan.records.push(record);
        pos += 8 + len as usize;
        scan.valid_len = pos;
    }
    if scan.valid_len == 0 {
        scan.valid_len = MANIFEST_MAGIC.len().min(bytes.len());
    }
    scan
}

/// Replays scanned records into per-tenant chains, newest first. A
/// re-commit at an existing epoch supersedes the older record (same file,
/// rewritten atomically); prunes drop strictly-older epochs.
pub fn chains_from_records(records: &[Record]) -> BTreeMap<u64, Vec<Commit>> {
    let mut chains: BTreeMap<u64, Vec<Commit>> = BTreeMap::new();
    for record in records {
        match record {
            Record::Commit(c) => {
                let chain = chains.entry(c.tenant).or_default();
                chain.retain(|old| old.epoch != c.epoch);
                chain.push(*c);
            }
            Record::Prune { tenant, upto_epoch } => {
                if let Some(chain) = chains.get_mut(tenant) {
                    chain.retain(|c| c.epoch >= *upto_epoch);
                }
            }
        }
    }
    for chain in chains.values_mut() {
        // Journal order is already oldest→newest per epoch; sort by epoch
        // descending so index 0 is the newest committed checkpoint.
        chain.sort_by_key(|c| std::cmp::Reverse(c.epoch));
    }
    chains
}

struct Inner {
    /// Append handle on MANIFEST.
    manifest: File,
    /// Bytes of valid journal (where the next append lands).
    manifest_len: u64,
    /// Per-tenant committed chains, newest first.
    chains: BTreeMap<u64, Vec<Commit>>,
}

/// The durable per-tenant checkpoint store. One instance owns one
/// directory; all commits funnel through it so MANIFEST order is total.
pub struct CheckpointStore {
    dir: PathBuf,
    retain: usize,
    inner: Mutex<Inner>,
}

impl fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CheckpointStore")
            .field("dir", &self.dir)
            .field("retain", &self.retain)
            .finish()
    }
}

impl CheckpointStore {
    /// Opens (creating if needed) the store at `dir`, keeping the newest
    /// `retain` checkpoints per tenant (clamped to ≥ 1: pruning never
    /// touches the newest committed entry).
    ///
    /// The open performs the recovery scan: the MANIFEST's valid prefix
    /// is replayed into per-tenant chains, a torn tail is truncated away
    /// (it would otherwise block future appends from ever parsing), and
    /// stale `*.tmp` droppings from interrupted writes are removed. A
    /// corrupt or missing journal yields empty chains, never an error —
    /// recovery then falls back to the template.
    ///
    /// # Errors
    ///
    /// Only real I/O failures (directory creation, journal open) —
    /// corruption is tolerated, not reported.
    pub fn open(dir: &Path, retain: usize) -> Result<CheckpointStore, StoreError> {
        fs::create_dir_all(dir).map_err(io_err("directory create"))?;
        // Reclaim temp droppings from writes a crash interrupted.
        if let Ok(entries) = fs::read_dir(dir) {
            for entry in entries.flatten() {
                if entry.path().extension().is_some_and(|e| e == "tmp") {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        let path = dir.join("MANIFEST");
        let bytes = fs::read(&path).unwrap_or_default();
        let scan = scan_manifest(&bytes);
        if scan.torn {
            tel::counter("serve.ckpt.manifest_torn").incr();
        }
        let chains = chains_from_records(&scan.records);
        let fresh =
            bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC;
        let mut manifest = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)
            .map_err(io_err("manifest open"))?;
        if fresh {
            // New (or unrecognizable) journal: start it with the header.
            manifest.set_len(0).map_err(io_err("manifest reset"))?;
            manifest
                .write_all(MANIFEST_MAGIC)
                .map_err(io_err("manifest header"))?;
            manifest.sync_all().map_err(io_err("manifest sync"))?;
        } else if (scan.valid_len as u64) < bytes.len() as u64 {
            // Truncate the torn tail so the next append parses.
            manifest
                .set_len(scan.valid_len as u64)
                .map_err(io_err("manifest truncate"))?;
            manifest.sync_all().map_err(io_err("manifest sync"))?;
        }
        let manifest_len = if fresh {
            MANIFEST_MAGIC.len() as u64
        } else {
            scan.valid_len as u64
        };
        Ok(CheckpointStore {
            dir: dir.to_path_buf(),
            retain: retain.max(1),
            inner: Mutex::new(Inner {
                manifest,
                manifest_len,
                chains,
            }),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Tenants with at least one committed checkpoint.
    pub fn tenants(&self) -> Vec<u64> {
        self.lock().chains.keys().copied().collect()
    }

    /// `tenant`'s committed chain, newest first.
    pub fn chain(&self, tenant: u64) -> Vec<Commit> {
        self.lock().chains.get(&tenant).cloned().unwrap_or_default()
    }

    /// `tenant`'s newest committed checkpoint, if any.
    pub fn newest(&self, tenant: u64) -> Option<Commit> {
        self.lock()
            .chains
            .get(&tenant)
            .and_then(|c| c.first())
            .copied()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Commit takes no user code under the lock; poison just means a
        // peer thread died mid-commit, and the on-disk journal is the
        // source of truth anyway.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Commits `image` as `tenant`'s checkpoint at `epoch`, returning the
    /// durable path. Applies the commit protocol (temp + fsync + rename,
    /// then a fsynced MANIFEST append), then retention.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on real I/O failure; [`StoreError::Injected`]
    /// when a chaos site abandoned the write. In both cases the previous
    /// committed chain is untouched.
    pub fn commit(
        &self,
        tenant: u64,
        epoch: u64,
        restarts: u64,
        image: &[u8],
    ) -> Result<PathBuf, StoreError> {
        let t0 = tel::now_ns();
        fault::ckpt_slow();
        let commit = Commit {
            tenant,
            epoch,
            restarts,
            file_len: image.len() as u64,
            file_crc: crc32(image),
        };
        let final_path = self.dir.join(commit.file_name());
        let tmp = self.dir.join(format!("{}.tmp", commit.file_name()));

        // Step 1: durable image bytes under a temp name.
        let mut file = File::create(&tmp).map_err(io_err("image create"))?;
        if let Some(boundary) = fault::ckpt_crash(image.len() as u64) {
            // Simulated process death mid-write: persist exactly the torn
            // prefix and stop — no rename, no record, no cleanup.
            let _ = file.write_all(&image[..boundary as usize]);
            let _ = file.sync_all();
            tel::counter("serve.ckpt.commit_failures").incr();
            return Err(StoreError::Injected {
                site: "ckpt.crash",
                boundary,
            });
        }
        file.write_all(image)
            .and_then(|()| file.sync_all())
            .map_err(io_err("image write"))?;
        drop(file);

        // Step 2: publish the image under its versioned name.
        fs::rename(&tmp, &final_path).map_err(io_err("image rename"))?;
        self.sync_dir();

        // Step 3: the commit point — a durable MANIFEST record.
        let frame = encode_frame(&Record::Commit(commit));
        let mut inner = self.lock();
        if let Some(boundary) = fault::ckpt_torn_manifest(frame.len() as u64) {
            // Simulated process death mid-append: the journal gains a torn
            // tail; the image file is an orphan no record names.
            let _ = inner.manifest.write_all(&frame[..boundary as usize]);
            let _ = inner.manifest.sync_all();
            inner.manifest_len += boundary;
            tel::counter("serve.ckpt.commit_failures").incr();
            return Err(StoreError::Injected {
                site: "ckpt.torn_manifest",
                boundary,
            });
        }
        inner
            .manifest
            .write_all(&frame)
            .and_then(|()| inner.manifest.sync_all())
            .map_err(io_err("manifest append"))?;
        inner.manifest_len += frame.len() as u64;
        let chain = inner.chains.entry(tenant).or_default();
        chain.retain(|old| old.epoch != epoch);
        chain.push(commit);
        chain.sort_by_key(|c| std::cmp::Reverse(c.epoch));
        tel::counter("serve.ckpt.commits").incr();

        self.apply_retention(&mut inner, tenant)?;
        if inner.manifest_len > COMPACT_BYTES {
            self.compact_locked(&mut inner)?;
        }
        tel::histogram("serve.ckpt.commit_ns").record(tel::now_ns().saturating_sub(t0));
        Ok(final_path)
    }

    /// Deletes checkpoints beyond the newest `retain` for `tenant`. The
    /// prune record goes durable *before* the files disappear, so the
    /// journal never names a file retention still needs.
    fn apply_retention(&self, inner: &mut Inner, tenant: u64) -> Result<(), StoreError> {
        let Some(chain) = inner.chains.get(&tenant) else {
            return Ok(());
        };
        if chain.len() <= self.retain {
            return Ok(());
        }
        let cutoff = chain[self.retain - 1].epoch;
        let doomed: Vec<Commit> = chain.iter().filter(|c| c.epoch < cutoff).copied().collect();
        let frame = encode_frame(&Record::Prune {
            tenant,
            upto_epoch: cutoff,
        });
        inner
            .manifest
            .write_all(&frame)
            .and_then(|()| inner.manifest.sync_all())
            .map_err(io_err("prune append"))?;
        inner.manifest_len += frame.len() as u64;
        for commit in &doomed {
            let _ = fs::remove_file(self.dir.join(commit.file_name()));
            tel::counter("serve.ckpt.pruned").incr();
        }
        inner
            .chains
            .get_mut(&tenant)
            .expect("chain exists")
            .retain(|c| c.epoch >= cutoff);
        Ok(())
    }

    /// Rewrites MANIFEST with only the live commit records (same temp,
    /// fsync, rename discipline), bounding journal growth. Exposed for
    /// tests; commits trigger it automatically past [`COMPACT_BYTES`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on I/O failure; the old journal stays in place.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.lock();
        self.compact_locked(&mut inner)
    }

    fn compact_locked(&self, inner: &mut Inner) -> Result<(), StoreError> {
        let mut bytes = MANIFEST_MAGIC.to_vec();
        // Oldest→newest per tenant, so a rescan replays to the same chains.
        for chain in inner.chains.values() {
            for commit in chain.iter().rev() {
                bytes.extend_from_slice(&encode_frame(&Record::Commit(*commit)));
            }
        }
        let path = self.dir.join("MANIFEST");
        let tmp = self.dir.join("MANIFEST.tmp");
        let mut file = File::create(&tmp).map_err(io_err("manifest compact create"))?;
        file.write_all(&bytes)
            .and_then(|()| file.sync_all())
            .map_err(io_err("manifest compact write"))?;
        drop(file);
        fs::rename(&tmp, &path).map_err(io_err("manifest compact rename"))?;
        self.sync_dir();
        inner.manifest = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(io_err("manifest reopen"))?;
        inner.manifest_len = bytes.len() as u64;
        tel::counter("serve.ckpt.compactions").incr();
        Ok(())
    }

    /// Reads and verifies a committed checkpoint's image bytes: the file
    /// must match the record's recorded length and CRC-32 exactly before
    /// a single byte is trusted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file is unreadable;
    /// [`StoreError::ImageMismatch`] when it disagrees with its record
    /// (post-commit corruption) — callers fall back down the chain.
    pub fn read_image(&self, commit: &Commit) -> Result<Vec<u8>, StoreError> {
        let path = self.dir.join(commit.file_name());
        let bytes = fs::read(&path).map_err(io_err("image read"))?;
        if bytes.len() as u64 != commit.file_len {
            return Err(StoreError::ImageMismatch {
                path,
                detail: format!(
                    "{} bytes on disk, record says {}",
                    bytes.len(),
                    commit.file_len
                ),
            });
        }
        let found = crc32(&bytes);
        if found != commit.file_crc {
            return Err(StoreError::ImageMismatch {
                path,
                detail: format!(
                    "CRC {found:#010x} on disk, record says {:#010x}",
                    commit.file_crc
                ),
            });
        }
        Ok(bytes)
    }

    /// Best-effort directory fsync (not every filesystem supports it).
    fn sync_dir(&self) {
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(tag: &str, retain: usize) -> (PathBuf, CheckpointStore) {
        let dir = std::env::temp_dir().join(format!(
            "mst_ckpt_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::open(&dir, retain).expect("store opens");
        (dir, store)
    }

    fn fake_image(tag: u8, len: usize) -> Vec<u8> {
        (0..len).map(|i| (i as u8).wrapping_mul(tag)).collect()
    }

    #[test]
    fn commit_read_and_reopen_round_trip() {
        let (dir, store) = temp_store("roundtrip", 4);
        let img1 = fake_image(3, 257);
        let img2 = fake_image(5, 513);
        store.commit(0, 1, 0, &img1).expect("commit e1");
        store.commit(0, 2, 1, &img2).expect("commit e2");
        store.commit(7, 4, 0, &img1).expect("tenant 7 commit");

        let newest = store.newest(0).expect("chain exists");
        assert_eq!((newest.epoch, newest.restarts), (2, 1));
        assert_eq!(store.read_image(&newest).unwrap(), img2);
        let chain = store.chain(0);
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1].epoch, 1);
        assert_eq!(store.read_image(&chain[1]).unwrap(), img1);

        // Reopen: the journal replays to identical chains.
        drop(store);
        let store = CheckpointStore::open(&dir, 4).expect("reopen");
        assert_eq!(store.chain(0).len(), 2);
        assert_eq!(store.newest(0).unwrap().epoch, 2);
        assert_eq!(store.newest(7).unwrap().epoch, 4);
        assert_eq!(store.tenants(), vec![0, 7]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_old_epochs_but_never_the_newest() {
        let (dir, store) = temp_store("retention", 2);
        for epoch in 1..=5u64 {
            store
                .commit(0, epoch, 0, &fake_image(epoch as u8, 64))
                .expect("commit");
        }
        let chain = store.chain(0);
        assert_eq!(
            chain.iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![5, 4],
            "retain=2 keeps the two newest"
        );
        // Pruned files are gone, kept files remain.
        for epoch in 1..=3u64 {
            assert!(!dir.join(format!("tenant0.e{epoch}.image")).exists());
        }
        for epoch in 4..=5u64 {
            assert!(dir.join(format!("tenant0.e{epoch}.image")).exists());
        }
        // And the prune survives a reopen (the record is durable).
        drop(store);
        let store = CheckpointStore::open(&dir, 2).expect("reopen");
        assert_eq!(store.chain(0).len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recommit_at_same_epoch_supersedes() {
        let (dir, store) = temp_store("recommit", 4);
        store.commit(0, 1, 0, &fake_image(1, 64)).unwrap();
        let img = fake_image(9, 96);
        store.commit(0, 1, 0, &img).unwrap();
        let chain = store.chain(0);
        assert_eq!(chain.len(), 1, "same-epoch re-commit supersedes");
        assert_eq!(store.read_image(&chain[0]).unwrap(), img);
        drop(store);
        let store = CheckpointStore::open(&dir, 4).expect("reopen");
        assert_eq!(store.read_image(&store.newest(0).unwrap()).unwrap(), img);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_image_is_detected_by_length_and_crc() {
        let (dir, store) = temp_store("imgcorrupt", 4);
        store.commit(0, 1, 0, &fake_image(1, 128)).unwrap();
        let newest = store.newest(0).unwrap();
        let path = dir.join(newest.file_name());

        // Bit flip: same length, wrong CRC.
        let mut bytes = fs::read(&path).unwrap();
        bytes[64] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.read_image(&newest),
            Err(StoreError::ImageMismatch { .. })
        ));

        // Truncation: wrong length.
        fs::write(&path, &bytes[..100]).unwrap();
        assert!(matches!(
            store.read_image(&newest),
            Err(StoreError::ImageMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_chains_and_shrinks_the_journal() {
        let (dir, store) = temp_store("compact", 2);
        for epoch in 1..=20u64 {
            store
                .commit(0, epoch, 0, &fake_image(epoch as u8, 64))
                .unwrap();
        }
        let before = fs::metadata(dir.join("MANIFEST")).unwrap().len();
        store.compact().expect("compaction");
        let after = fs::metadata(dir.join("MANIFEST")).unwrap().len();
        assert!(after < before, "compaction shrinks ({before} -> {after})");
        assert_eq!(
            store.chain(0).iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![20, 19]
        );
        drop(store);
        let store = CheckpointStore::open(&dir, 2).expect("reopen after compaction");
        assert_eq!(
            store.chain(0).iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![20, 19]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    /// Acceptance property: crash-at-every-byte-boundary. Truncating the
    /// journal at *every* prefix length must scan without panicking to
    /// exactly the commits whose frames are fully contained in the
    /// prefix — committed entries are never lost, torn tails never
    /// resurrect.
    #[test]
    fn manifest_scan_survives_truncation_at_every_byte_boundary() {
        let commits: Vec<Record> = (1..=4u64)
            .map(|e| {
                Record::Commit(Commit {
                    tenant: e % 2,
                    epoch: e,
                    restarts: e / 2,
                    file_len: 100 + e,
                    file_crc: 0xABCD_0000 | e as u32,
                })
            })
            .collect();
        let mut bytes = MANIFEST_MAGIC.to_vec();
        let mut frame_ends = Vec::new();
        for record in &commits {
            bytes.extend_from_slice(&encode_frame(record));
            frame_ends.push(bytes.len());
        }
        for cut in 0..=bytes.len() {
            let scan = scan_manifest(&bytes[..cut]);
            let expect_records = frame_ends.iter().filter(|&&end| end <= cut).count();
            assert_eq!(
                scan.records.len(),
                expect_records,
                "cut at {cut}: committed prefix must survive exactly"
            );
            assert_eq!(&scan.records[..], &commits[..expect_records]);
            assert_eq!(
                scan.torn,
                cut != 0 && !frame_ends.contains(&cut) && cut != MANIFEST_MAGIC.len(),
                "cut at {cut}: torn flag"
            );
        }
    }

    /// Same property end-to-end: every truncation point of a real store's
    /// journal must open to a consistent (prefix) state.
    #[test]
    fn store_reopens_from_every_journal_truncation() {
        let (dir, store) = temp_store("everycut", 8);
        for epoch in 1..=3u64 {
            store
                .commit(1, epoch, 0, &fake_image(epoch as u8, 64))
                .unwrap();
        }
        let manifest = fs::read(dir.join("MANIFEST")).unwrap();
        drop(store);
        let cut_dir = std::env::temp_dir().join(format!(
            "mst_ckpt_store_everycut_cut_{}",
            std::process::id()
        ));
        for cut in 0..=manifest.len() {
            let _ = fs::remove_dir_all(&cut_dir);
            fs::create_dir_all(&cut_dir).unwrap();
            fs::write(cut_dir.join("MANIFEST"), &manifest[..cut]).unwrap();
            let store = CheckpointStore::open(&cut_dir, 8).expect("open never fails on torn");
            let chain = store.chain(1);
            // The chain is some prefix of [1, 2, 3] worth of epochs,
            // newest-first and contiguous from 1.
            let epochs: Vec<u64> = chain.iter().map(|c| c.epoch).collect();
            let n = epochs.len() as u64;
            assert!(n <= 3);
            assert_eq!(epochs, (1..=n).rev().collect::<Vec<_>>(), "cut {cut}");
        }
        let _ = fs::remove_dir_all(&cut_dir);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_journal_keeps_the_valid_prefix() {
        let (dir, store) = temp_store("midflip", 8);
        for epoch in 1..=3u64 {
            store
                .commit(0, epoch, 0, &fake_image(epoch as u8, 64))
                .unwrap();
        }
        let path = dir.join("MANIFEST");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a bit inside the second frame's payload.
        let frame_len = encode_frame(&Record::Commit(store.chain(0)[0])).len();
        let pos = MANIFEST_MAGIC.len() + frame_len + 10;
        bytes[pos] ^= 0x08;
        fs::write(&path, &bytes).unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir, 8).expect("open tolerates corruption");
        assert_eq!(
            store.chain(0).iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![1],
            "only the pre-corruption prefix survives"
        );
        // And the store keeps working: the truncated journal accepts new
        // commits on top of the surviving prefix.
        store.commit(0, 5, 0, &fake_image(5, 64)).unwrap();
        drop(store);
        let store = CheckpointStore::open(&dir, 8).unwrap();
        assert_eq!(
            store.chain(0).iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![5, 1]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_and_torn_manifest_lose_nothing_committed() {
        use mst_vkernel::fault::{self, ChaosConfig, FaultSite};
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                fault::disable();
            }
        }
        let _disarm = Disarm;

        let (dir, store) = temp_store("injected", 4);
        store.commit(0, 1, 0, &fake_image(1, 200)).unwrap();

        // ckpt.crash: the image write dies at a seeded boundary; the
        // committed chain is untouched and a torn .tmp is left behind.
        fault::install(ChaosConfig {
            seed: 11,
            rate: 1.0,
            sites: FaultSite::CkptCrash.bit(),
        });
        fault::set_kill_budget(1);
        let err = store.commit(0, 2, 0, &fake_image(2, 200)).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Injected {
                    site: "ckpt.crash",
                    ..
                }
            ),
            "{err}"
        );
        fault::disable();
        assert_eq!(store.newest(0).unwrap().epoch, 1, "commit never happened");

        // ckpt.torn_manifest: the image renamed but the record tore; the
        // journal keeps its prefix, the orphan image is invisible.
        fault::install(ChaosConfig {
            seed: 12,
            rate: 1.0,
            sites: FaultSite::CkptTornManifest.bit(),
        });
        fault::set_kill_budget(1);
        let err = store.commit(0, 3, 0, &fake_image(3, 200)).unwrap_err();
        assert!(
            matches!(
                err,
                StoreError::Injected {
                    site: "ckpt.torn_manifest",
                    ..
                }
            ),
            "{err}"
        );
        fault::disable();
        drop(store);

        // "Process death": reopen from disk alone.
        let store = CheckpointStore::open(&dir, 4).expect("reopen after injected crashes");
        assert_eq!(
            store.chain(0).iter().map(|c| c.epoch).collect::<Vec<_>>(),
            vec![1],
            "exactly the committed prefix survives"
        );
        assert_eq!(
            store.read_image(&store.newest(0).unwrap()).unwrap(),
            fake_image(1, 200)
        );
        // The torn tail was truncated on open: appends work again.
        store.commit(0, 4, 1, &fake_image(4, 200)).unwrap();
        assert_eq!(store.newest(0).unwrap().epoch, 4);
        let _ = fs::remove_dir_all(&dir);
    }
}
