//! Compares two benchmark/profile row documents and gates on regressions.
//!
//! Usage:
//!
//! ```text
//! benchcmp OLD.json NEW.json [--threshold 1.15] [--only SUBSTR] [--skip SUBSTR]
//! benchcmp --inject FACTOR --out FILE OLD.json
//! ```
//!
//! Accepts any document with a top-level `rows` array on the shared row
//! schema (`{name, value, unit, n}`) — both `mst-bench-rows/1` files
//! (`BENCH_*.json`) and `mst-profile/1` files (`PROFILE.json`). Rows with
//! unit `"ns"` are lower-is-better durations and are **gated**: if
//! `new / old > threshold` for any gated row present in both files, the
//! tool prints the offenders and exits 1. Other units (counts, percents,
//! paper seconds) are compared informationally only.
//!
//! `--only` / `--skip` filter gated rows by substring (repeatable); CI
//! uses `--skip` to exclude helper-scaling rows on small runners.
//!
//! `--inject FACTOR` writes a copy of `OLD.json` with every gated row
//! multiplied by `FACTOR` — a deterministic self-check that the gate
//! actually fires (CI injects a 2x regression and asserts exit != 0).
//!
//! Exit codes: 0 clean, 1 regression detected, 2 usage or I/O error.

use std::collections::BTreeMap;
use std::process::ExitCode;

use mst_telemetry::json::{self, Json};
use mst_telemetry::profile::fmt_f64;

const DEFAULT_THRESHOLD: f64 = 1.15;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("benchcmp: {e}");
            ExitCode::from(2)
        }
    }
}

/// `Ok(true)` = clean, `Ok(false)` = regression, `Err` = usage/IO.
fn run(args: &[String]) -> Result<bool, String> {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut only: Vec<String> = Vec::new();
    let mut skip: Vec<String> = Vec::new();
    let mut inject: Option<f64> = None;
    let mut out: Option<String> = None;
    let mut files: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let take = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--threshold" => {
                threshold = take(&mut i)?
                    .parse()
                    .map_err(|e| format!("bad --threshold: {e}"))?
            }
            "--only" => only.push(take(&mut i)?),
            "--skip" => skip.push(take(&mut i)?),
            "--inject" => {
                inject = Some(
                    take(&mut i)?
                        .parse()
                        .map_err(|e| format!("bad --inject: {e}"))?,
                )
            }
            "--out" => out = Some(take(&mut i)?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            file => files.push(file.to_string()),
        }
        i += 1;
    }

    if let Some(factor) = inject {
        let out = out.ok_or("--inject requires --out FILE")?;
        let [src] = files.as_slice() else {
            return Err("--inject takes exactly one input file".into());
        };
        let doc = load(src)?;
        let doctored = inject_regression(&doc, factor);
        std::fs::write(&out, write_json(&doctored)).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("wrote {out} with ns rows x{factor}");
        return Ok(true);
    }

    let [old_path, new_path] = files.as_slice() else {
        return Err(
            "usage: benchcmp OLD.json NEW.json [--threshold X] [--only S] [--skip S]".into(),
        );
    };
    let old_rows = rows_of(&load(old_path)?)?;
    let new_rows = rows_of(&load(new_path)?)?;

    let gated = |name: &str, unit: &str| -> bool {
        unit == "ns"
            && (only.is_empty() || only.iter().any(|s| name.contains(s.as_str())))
            && !skip.iter().any(|s| name.contains(s.as_str()))
    };

    let mut regressions = 0usize;
    let mut compared = 0usize;
    println!(
        "{:<44} {:>14} {:>14} {:>7}  verdict (threshold {threshold:.2}x)",
        "row", "old", "new", "ratio"
    );
    for (name, (old_v, unit)) in &old_rows {
        let Some((new_v, new_unit)) = new_rows.get(name) else {
            continue;
        };
        if unit != new_unit {
            return Err(format!("{name}: unit changed {unit} -> {new_unit}"));
        }
        let ratio = if *old_v > 0.0 { new_v / old_v } else { 1.0 };
        let is_gated = gated(name, unit);
        let verdict = if !is_gated {
            "info"
        } else if ratio > threshold {
            regressions += 1;
            "REGRESSION"
        } else {
            compared += 1;
            "ok"
        };
        // Keep the table focused: print info rows only when interesting.
        if is_gated || ratio > threshold {
            println!(
                "{name:<44} {:>12}{unit} {:>12}{unit} {ratio:>6.2}x  {verdict}",
                fmt_f64(*old_v),
                fmt_f64(*new_v)
            );
        }
    }
    for name in new_rows.keys().filter(|n| !old_rows.contains_key(*n)) {
        println!("{name:<44} (new row, not gated)");
    }

    if regressions > 0 {
        eprintln!("benchcmp: {regressions} regression(s) above {threshold:.2}x");
        Ok(false)
    } else {
        eprintln!("benchcmp: {compared} gated row(s) within {threshold:.2}x");
        Ok(true)
    }
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// `name -> (value, unit)` from a document's top-level `rows` array.
fn rows_of(doc: &Json) -> Result<BTreeMap<String, (f64, String)>, String> {
    let rows = doc
        .get("rows")
        .and_then(|r| r.as_arr())
        .ok_or("document has no top-level rows array")?;
    let mut map = BTreeMap::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or("row without a name")?;
        let value = row
            .get("value")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("row {name} without a numeric value"))?;
        let unit = row.get("unit").and_then(|u| u.as_str()).unwrap_or("");
        map.insert(name.to_string(), (value, unit.to_string()));
    }
    Ok(map)
}

/// A copy of `doc` with every `ns`-unit row's value multiplied by `factor`.
fn inject_regression(doc: &Json, factor: f64) -> Json {
    match doc {
        Json::Obj(m) => {
            let mut out = m.clone();
            if let Some(Json::Arr(rows)) = m.get("rows") {
                let rows = rows
                    .iter()
                    .map(|row| {
                        let is_ns = row.get("unit").and_then(|u| u.as_str()) == Some("ns");
                        match (row, is_ns) {
                            (Json::Obj(fields), true) => {
                                let mut fields = fields.clone();
                                if let Some(Json::Num(v)) = fields.get_mut("value") {
                                    *v *= factor;
                                }
                                Json::Obj(fields)
                            }
                            _ => row.clone(),
                        }
                    })
                    .collect();
                out.insert("rows".to_string(), Json::Arr(rows));
            }
            Json::Obj(out)
        }
        other => other.clone(),
    }
}

/// Minimal JSON writer for doctored copies (sorted object keys, same as
/// the parser's representation).
fn write_json(j: &Json) -> String {
    match j {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(n) => fmt_f64(*n),
        Json::Str(s) => format!("\"{}\"", json::escape(s)),
        Json::Arr(items) => {
            let inner: Vec<String> = items.iter().map(write_json).collect();
            format!("[{}]", inner.join(","))
        }
        Json::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{}\":{}", json::escape(k), write_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(pause_ns: f64) -> String {
        format!(
            "{{\"schema\":\"mst-bench-rows/1\",\"bench\":\"t\",\"meta\":{{}},\"rows\":[\
             {{\"name\":\"gc.pause.p99_ns\",\"value\":{pause_ns},\"unit\":\"ns\",\"n\":10}},\
             {{\"name\":\"gc.count\",\"value\":7,\"unit\":\"count\",\"n\":1}}]}}"
        )
    }

    fn write_tmp(name: &str, text: &str) -> String {
        let path = std::env::temp_dir().join(name);
        std::fs::write(&path, text).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn identical_files_pass() {
        let a = write_tmp("benchcmp_same_a.json", &doc(1000.0));
        let b = write_tmp("benchcmp_same_b.json", &doc(1000.0));
        assert_eq!(run(&[a, b]), Ok(true));
    }

    #[test]
    fn injected_2x_regression_fails() {
        let old = write_tmp("benchcmp_reg_old.json", &doc(1000.0));
        let new = write_tmp("benchcmp_reg_new.json", &doc(2000.0));
        assert_eq!(run(&[old, new]), Ok(false), "2x pause must trip the gate");
    }

    #[test]
    fn inject_flag_doctors_ns_rows_only() {
        let old = write_tmp("benchcmp_inj_old.json", &doc(1000.0));
        let out = std::env::temp_dir()
            .join("benchcmp_inj_out.json")
            .to_string_lossy()
            .into_owned();
        let args = [
            "--inject".to_string(),
            "2".to_string(),
            "--out".to_string(),
            out.clone(),
            old.clone(),
        ];
        assert_eq!(run(&args), Ok(true));
        // The doctored copy vs the original must now trip the gate...
        assert_eq!(run(&[old.clone(), out.clone()]), Ok(false));
        // ...and the non-ns row must be untouched.
        let doctored = load(&out).unwrap();
        let rows = rows_of(&doctored).unwrap();
        assert_eq!(rows["gc.count"].0, 7.0);
        assert_eq!(rows["gc.pause.p99_ns"].0, 2000.0);
    }

    #[test]
    fn skip_and_only_filter_gated_rows() {
        let old = write_tmp("benchcmp_filt_old.json", &doc(1000.0));
        let new = write_tmp("benchcmp_filt_new.json", &doc(2000.0));
        let skip = [
            old.clone(),
            new.clone(),
            "--skip".to_string(),
            "pause".to_string(),
        ];
        assert_eq!(run(&skip), Ok(true), "--skip must exempt the row");
        let only = [old, new, "--only".to_string(), "unrelated".to_string()];
        assert_eq!(run(&only), Ok(true), "--only must exclude the row");
    }

    #[test]
    fn threshold_is_respected() {
        let old = write_tmp("benchcmp_thr_old.json", &doc(1000.0));
        let new = write_tmp("benchcmp_thr_new.json", &doc(1100.0));
        assert_eq!(run(&[old.clone(), new.clone()]), Ok(true), "1.10x < 1.15x");
        let tight = [new, old, "--threshold".to_string(), "1.05".to_string()];
        // Reversed order: 1000/1100 improves, still passes a tight gate.
        assert_eq!(run(&tight), Ok(true));
    }
}
