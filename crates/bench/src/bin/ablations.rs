//! Ablation benchmarks for the paper's strategy claims (DESIGN.md A1–A4).
//!
//! Usage: `cargo run --release -p mst-bench --bin ablations [-- <which>]`
//! where `<which>` ∈ `cache | contexts | alloc | scavenge | all` (default).
//!
//! * **cache** — §3.2: the serialized method cache ("a two-level locking
//!   scheme to allow multiple readers") was "much too slow" under
//!   contention; replication fixed it.
//! * **contexts** — §3.2: replicating the free context list cut worst-case
//!   overhead from 160% to 65%.
//! * **alloc** — §4: "replication of the new-object space should have
//!   significant benefits" (the paper's future work, implemented here as
//!   per-processor allocation buffers).
//! * **scavenge** — §3.1: scavenge time is proportional to live data.

use mst_bench::harness::{thread_cpu_ns, time_prepared};
use mst_core::{MsConfig, MsSystem, Strategies};
use mst_interp::{CachePolicy, FreeListPolicy};
use mst_objmem::AllocPolicy;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    match which.as_str() {
        "cache" => cache_ablation(),
        "contexts" => contexts_ablation(),
        "alloc" => alloc_ablation(),
        "scavenge" => scavenge_ablation(),
        _ => {
            cache_ablation();
            contexts_ablation();
            alloc_ablation();
            scavenge_ablation();
        }
    }
}

/// Runs `workload` on the main interpreter while 4 competitors run
/// `competitor` on the workers; reports the main thread's CPU ns/iter.
fn contended_run(strategies: Strategies, workload: &str, competitor: &str) -> f64 {
    let mut ms = MsSystem::new(MsConfig {
        strategies,
        processors: 5,
        ..MsConfig::default()
    });
    for _ in 0..4 {
        ms.evaluate(&format!("[[true] whileTrue: [{competitor}]] forkAt: 2"))
            .expect("competitor spawn failed");
    }
    std::thread::sleep(std::time::Duration::from_millis(30));
    let prepared = ms.prepare(workload).expect("workload must compile");
    let t = time_prepared(&mut ms, &prepared, 3, 300);
    ms.shutdown();
    t.cpu_ns
}

fn solo_run(strategies: Strategies, workload: &str) -> f64 {
    let mut ms = MsSystem::new(MsConfig {
        strategies,
        processors: 5,
        ..MsConfig::default()
    });
    let prepared = ms.prepare(workload).expect("workload must compile");
    let t = time_prepared(&mut ms, &prepared, 3, 300);
    ms.shutdown();
    t.cpu_ns
}

fn report(line: &str, solo: f64, contended: f64) {
    println!(
        "  {line:<46} solo {:>8.2} ms   contended {:>8.2} ms   overhead {:>5.0}%",
        solo / 1e6,
        contended / 1e6,
        (contended / solo - 1.0) * 100.0
    );
}

fn cache_ablation() {
    println!("\nA1. Method-lookup cache: serialized (two-level lock) vs replicated");
    println!("    (paper §3.2: the serialized variant ran 'much too slowly')");
    let workload = "Benchmark sendHeavy: 30000";
    let competitor = "Benchmark sendHeavy: 1000";
    for (name, policy) in [
        ("serialized global cache", CachePolicy::Serialized),
        ("replicated per-processor", CachePolicy::Replicated),
    ] {
        let strategies = Strategies {
            cache: policy,
            ..Strategies::ms()
        };
        let solo = solo_run(strategies, workload);
        let contended = contended_run(strategies, workload, competitor);
        report(name, solo, contended);
    }
}

fn contexts_ablation() {
    println!("\nA2. Free context list: disabled vs shared-locked vs replicated");
    println!("    (paper §3.2: replication cut worst-case overhead 160% → 65%)");
    let workload = "Benchmark callHeavy: 20000";
    let competitor = "Benchmark callHeavy: 500";
    for (name, policy) in [
        (
            "no recycling (allocate every frame)",
            FreeListPolicy::Disabled,
        ),
        ("shared free list under one lock", FreeListPolicy::Shared),
        ("replicated per-processor lists", FreeListPolicy::Replicated),
    ] {
        let strategies = Strategies {
            free_contexts: policy,
            ..Strategies::ms()
        };
        let solo = solo_run(strategies, workload);
        let contended = contended_run(strategies, workload, competitor);
        report(name, solo, contended);
    }
}

fn alloc_ablation() {
    println!("\nA3. New-space allocation: shared locked eden vs per-processor buffers");
    println!("    (paper §4: 'replication of the new-object space should have");
    println!("     significant benefits' — their future work, implemented here)");
    let workload = "Benchmark allocHeavy: 20000";
    let competitor = "Benchmark allocHeavy: 500";
    for (name, policy) in [
        ("shared eden, one allocation lock", AllocPolicy::SharedEden),
        (
            "per-processor allocation buffers",
            AllocPolicy::PerProcessorLab { lab_words: 8 << 10 },
        ),
    ] {
        let strategies = Strategies {
            alloc: policy,
            ..Strategies::ms()
        };
        let solo = solo_run(strategies, workload);
        let contended = contended_run(strategies, workload, competitor);
        report(name, solo, contended);
    }
}

fn scavenge_ablation() {
    println!("\nA4. Scavenge cost is proportional to surviving data (paper §3.1)");
    let mut ms = MsSystem::new(MsConfig::default());
    for keep in [0usize, 200, 800, 3200, 12800] {
        // Build a retained graph of `keep` arrays (rooted from Rust), then
        // fill eden with garbage and time a forced scavenge.
        let _retained = ms
            .evaluate_to_root(&format!(
                "(1 to: {keep}) inject: OrderedCollection new
                    into: [:acc :i | acc add: (Array new: 8). acc]"
            ))
            .unwrap_or_else(|e| panic!("retain setup failed: {e}"));
        let prepared = ms
            .prepare("1 to: 2000 do: [:i | Array new: 16]. Object new scavenge")
            .unwrap();
        // One timed scavenge after warming.
        ms.run_prepared(&prepared).unwrap();
        let s0 = ms.mem().gc_stats();
        let cpu0 = thread_cpu_ns();
        ms.run_prepared(&prepared).unwrap();
        let cpu = thread_cpu_ns() - cpu0;
        let s1 = ms.mem().gc_stats();
        let scavenges = s1.scavenges - s0.scavenges;
        let survived = s1.words_survived - s0.words_survived;
        let pause_us =
            (s1.scavenge_nanos - s0.scavenge_nanos) as f64 / scavenges.max(1) as f64 / 1e3;
        println!(
            "  retained {keep:>6} arrays: {scavenges} scavenge(s), {survived:>8} words survived, \
             mean pause {pause_us:>8.1} µs  (run cpu {:.2} ms)",
            cpu as f64 / 1e6
        );
    }
    ms.shutdown();
}
