//! Load driver for the serving layer (`mst-serve`): measures request
//! latency and goodput across N isolated tenant sessions, then repeats the
//! run with serve-path chaos faults (`serve.drop`, `serve.slow`,
//! `serve.panic`) injected into ONE victim tenant and proves the blast
//! radius stays confined to it.
//!
//! ```text
//! cargo run --release -p mst-bench --bin serve              # full run
//! cargo run --release -p mst-bench --bin serve -- --smoke   # CI gate
//! ```
//!
//! Phases:
//!
//! 1. **Clean** — every tenant drives a mixed doit workload through
//!    [`Server::request`]; exact p50/p99/p999 over all samples.
//! 2. **Chaos** — the same workload with the victim tenant's requests
//!    dropped, stalled, and panicked mid-doit (kill-budgeted). Clients
//!    retry retryable failures with seeded exponential backoff + jitter.
//!
//! The run **fails** (exit 1) unless the other N−1 tenants complete all
//! their requests with zero errors and their chaos-phase p99 stays within
//! 2× the fault-free p99 (with a 10 ms floor so the trivial-doit baseline
//! does not turn scheduler jitter on shared CI runners into a flake).
//!
//! Writes `BENCH_serve.json` (`mst-bench-rows/1`), whose ns rows the
//! standing `benchcmp` gate compares against `baselines/BENCH_serve.json`.

use std::time::Duration;

use mst_bench::rows::write_rows;
use mst_core::{MsConfig, MsSystem};
use mst_objmem::MemoryConfig;
use mst_serve::{Backoff, ServeConfig, ServeError, Server};
use mst_telemetry as tel;
use mst_telemetry::profile::Row;
use mst_vkernel::fault::{self, ChaosConfig, FaultSite};

/// The request mix: short compute, allocation, collection traffic, string
/// building — each fast enough that the 2 s deadline only fires if
/// enforcement itself is broken.
const DOITS: &[&str] = &[
    "(1 to: 50) inject: 0 into: [:a :b | a + b]",
    "| o | o := OrderedCollection new. 1 to: 40 do: [:i | o add: i * i]. o size",
    "'serve' , '/' , 42 printString",
    "[:a :b | a * b] value: 6 value: 7",
];

/// What one tenant's driver thread saw.
#[derive(Default)]
struct Outcome {
    /// Nanosecond latency of every served request.
    latencies: Vec<u64>,
    /// Terminal failures (retry budget exhausted or a non-retryable error).
    errors: Vec<String>,
    served: u64,
    attempted: u64,
    retries: u64,
    crashes_observed: u64,
}

/// Drives `requests` doits through `tenant`, retrying retryable failures
/// (rejects, drops, crash respawns, expired deadlines) with seeded
/// exponential backoff.
fn drive(server: &Server, tenant: usize, requests: usize, seed: u64) -> Outcome {
    let mut backoff = Backoff::new(seed, Duration::from_micros(200), Duration::from_millis(20));
    let mut out = Outcome::default();
    for i in 0..requests {
        let src = DOITS[i % DOITS.len()];
        out.attempted += 1;
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match server.request(tenant, src) {
                Ok(resp) => {
                    out.latencies.push(resp.latency.as_nanos() as u64);
                    out.served += 1;
                    backoff.reset();
                    break;
                }
                Err(e) => {
                    let retryable = matches!(
                        e,
                        ServeError::Rejected(_)
                            | ServeError::Dropped
                            | ServeError::SessionCrashed { .. }
                            | ServeError::DeadlineExpired
                    );
                    if matches!(e, ServeError::SessionCrashed { .. }) {
                        out.crashes_observed += 1;
                    }
                    if retryable && attempts < 16 {
                        out.retries += 1;
                        std::thread::sleep(backoff.next_delay());
                        continue;
                    }
                    out.errors.push(format!("tenant {tenant} request {i}: {e}"));
                    break;
                }
            }
        }
    }
    out
}

/// Runs one phase: every tenant drives concurrently; outcomes by tenant.
fn run_phase(server: &Server, tenants: usize, requests: usize, seed0: u64) -> Vec<Outcome> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..tenants)
            .map(|t| {
                s.spawn(move || {
                    drive(
                        server,
                        t,
                        requests,
                        seed0 ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("driver thread"))
            .collect()
    })
}

fn pctl(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let tenants: usize = arg_after("--tenants")
        .map(|v| v.parse().expect("--tenants takes an integer"))
        .unwrap_or(8);
    assert!(
        tenants >= 2,
        "the blast-radius check needs at least 2 tenants"
    );
    let requests: usize = arg_after("--requests")
        .map(|v| v.parse().expect("--requests takes an integer"))
        .unwrap_or(if smoke { 30 } else { 80 });
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Small sessions: the image bootstraps comfortably inside 1 M old
    // words, and N of them must coexist.
    let base = MsConfig {
        processors: 2,
        memory: MemoryConfig {
            old_words: 1 << 20,
            eden_words: 64 << 10,
            survivor_words: 24 << 10,
            ..MemoryConfig::default()
        },
        ..MsConfig::default()
    };

    // Build the shared template once: bootstrap a real image, snapshot it.
    println!(
        "serve bench: building snapshot template ({tenants} tenants, {requests} requests each)"
    );
    let template_path =
        std::env::temp_dir().join(format!("mst_serve_bench_{}.image", std::process::id()));
    {
        let ms = MsSystem::new(base);
        ms.save_snapshot_file(&template_path)
            .expect("template snapshot saves");
        ms.shutdown();
    }
    let template = MsSystem::load_template(&template_path, base).expect("template loads");

    let cfg = ServeConfig {
        processors: 2,
        deadline: Duration::from_secs(2),
        queue_cap: 8,
        queue_wait_limit: Duration::from_secs(1),
        slow_stall: Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let server = Server::new(template, base, cfg, tenants);

    // Warm every session (template instantiation + worker start) outside
    // the timed window, so cold-start cost does not masquerade as p99.
    for t in 0..tenants {
        server.request(t, "3 + 4").expect("warmup doit");
    }

    // Phase 1: fault-free.
    let clean = run_phase(&server, tenants, requests, 0x5EED_5E12_7E00_0001);
    let mut clean_ns: Vec<u64> = clean
        .iter()
        .flat_map(|o| o.latencies.iter().copied())
        .collect();
    clean_ns.sort_unstable();
    let clean_errors: usize = clean.iter().map(|o| o.errors.len()).sum();
    let (p50, p99, p999) = (
        pctl(&clean_ns, 50.0),
        pctl(&clean_ns, 99.0),
        pctl(&clean_ns, 99.9),
    );
    println!(
        "clean: {} served, {} errors, p50 {:.1}us p99 {:.1}us p999 {:.1}us",
        clean_ns.len(),
        clean_errors,
        p50 as f64 / 1e3,
        p99 as f64 / 1e3,
        p999 as f64 / 1e3,
    );

    // Phase 2: same workload, serve-path faults aimed at tenant 0. The
    // panic site is kill-budgeted so the victim spends its time serving,
    // not only rebooting; drop/slow fire probabilistically per request.
    let victim = 0usize;
    // The injected panics are the point of this phase; keep their
    // backtraces out of the log so real failures stay visible.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos: injected") {
            prev_hook(info);
        }
    }));
    fault::install(ChaosConfig {
        seed: 0x5EED_C8A0_5E12_7E00,
        rate: 0.2,
        sites: FaultSite::ServeDrop.bit()
            | FaultSite::ServeSlow.bit()
            | FaultSite::ServePanic.bit(),
    });
    fault::set_kill_budget(if smoke { 2 } else { 4 });
    server.set_victim(Some(victim));
    let chaos = run_phase(&server, tenants, requests, 0x5EED_5E12_7E00_0002);
    fault::disable();
    server.set_victim(None);

    let mut nonvictim_ns: Vec<u64> = chaos
        .iter()
        .enumerate()
        .filter(|(t, _)| *t != victim)
        .flat_map(|(_, o)| o.latencies.iter().copied())
        .collect();
    nonvictim_ns.sort_unstable();
    let chaos_p99 = pctl(&nonvictim_ns, 99.0);
    let victim_goodput =
        100.0 * chaos[victim].served as f64 / chaos[victim].attempted.max(1) as f64;
    let crashes = server.restarts(victim);
    let retries: u64 = chaos.iter().map(|o| o.retries).sum();
    println!(
        "chaos: non-victim p99 {:.1}us over {} samples; victim goodput {victim_goodput:.1}% \
         ({} crashes, {} retries; drop={} slow={} panic={})",
        chaos_p99 as f64 / 1e3,
        nonvictim_ns.len(),
        crashes,
        retries,
        tel::counter("chaos.serve_drop").get(),
        tel::counter("chaos.serve_slow").get(),
        tel::counter("chaos.serve_panic").get(),
    );

    // Verdicts. The p99 bound gets a 10 ms floor: the clean p99 of these
    // trivial doits is well under a millisecond, and 2x a sub-millisecond
    // number is within scheduler noise on a loaded CI runner.
    let mut failed = false;
    for (t, o) in chaos.iter().enumerate() {
        if t == victim {
            continue;
        }
        if !o.errors.is_empty() || o.served != o.attempted {
            failed = true;
            eprintln!(
                "FAIL: non-victim tenant {t} had {} errors ({} / {} served): {:?}",
                o.errors.len(),
                o.served,
                o.attempted,
                o.errors
            );
        }
        if server.restarts(t) != 0 {
            failed = true;
            eprintln!(
                "FAIL: non-victim tenant {t} session crashed {} times",
                server.restarts(t)
            );
        }
    }
    if clean_errors != 0 {
        failed = true;
        eprintln!("FAIL: {clean_errors} errors in the fault-free phase");
    }
    let p99_bound = 2 * p99.max(10_000_000);
    if chaos_p99 > p99_bound {
        failed = true;
        eprintln!(
            "FAIL: non-victim chaos p99 {chaos_p99}ns exceeds bound {p99_bound}ns (2 x clean p99, 10ms floor)"
        );
    }

    let n = clean_ns.len() as u64;
    let rows = vec![
        Row::new("serve.clean.p50_ns", p50 as f64, "ns", n),
        Row::new("serve.clean.p99_ns", p99 as f64, "ns", n),
        Row::new("serve.clean.p999_ns", p999 as f64, "ns", n),
        Row::new(
            "serve.chaos.nonvictim_p99_ns",
            chaos_p99 as f64,
            "ns",
            nonvictim_ns.len() as u64,
        ),
        Row::new(
            "serve.chaos.victim_goodput_pct",
            victim_goodput,
            "pct",
            chaos[victim].attempted,
        ),
        Row::new("serve.chaos.session_crashes", crashes as f64, "count", 1),
        Row::new("serve.chaos.retries", retries as f64, "count", 1),
    ];
    write_rows(
        &out_path,
        "serve",
        &[
            ("tenants", tenants.to_string()),
            ("requests", requests.to_string()),
            ("mode", if smoke { "smoke" } else { "full" }.to_string()),
        ],
        &rows,
    );
    println!("wrote {out_path}");
    let _ = std::fs::remove_file(&template_path);

    if failed {
        eprintln!("serve bench FAILED");
        std::process::exit(1);
    }
    println!(
        "serve bench OK: {} non-victim tenants completed all requests with zero errors",
        tenants - 1
    );
}
