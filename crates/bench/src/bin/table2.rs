//! Regenerates **Table 2** ("Preliminary performance results") and
//! **Figure 2** (the same data normalized to baseline) from the paper.
//!
//! Usage: `cargo run --release -p mst-bench --bin table2 [--quick]`
//!
//! Each of the eight macro benchmarks runs in the four system states:
//! baseline BS, MS, MS + 4 idle Processes, MS + 4 busy Processes. The
//! primary metric is per-thread CPU time of the benchmark interpreter (see
//! `harness` module docs for why, on a single-core host); wall time is
//! shown for reference. The paper's numbers are printed alongside for
//! shape comparison.

use mst_bench::harness::{
    bar, ms_str, system_for_state, time_prepared, warm_process, Timing, TABLE2,
};
use mst_core::SystemState;
use mst_telemetry::Row;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (min_iters, min_ms) = if quick { (2, 50) } else { (3, 400) };

    println!("Reproducing Table 2 / Figure 2 — Pallas & Ungar, PLDI 1988");
    println!(
        "({} iterations-minimum per cell; metric: benchmark-thread CPU time)",
        min_iters
    );
    println!();

    eprintln!("== warming the process");
    warm_process(&TABLE2.map(|b| b.selector));

    // results[state][bench]
    let mut results: Vec<Vec<Timing>> = Vec::new();
    for state in SystemState::ALL {
        eprintln!("== state: {}", state.label());
        let mut ms = system_for_state(state);
        let mut row = Vec::new();
        for b in TABLE2 {
            let prepared = ms
                .prepare(&format!("Benchmark {}", b.selector))
                .expect("benchmark selector must compile");
            let t = time_prepared(&mut ms, &prepared, min_iters, min_ms);
            eprintln!("   {:<36} {} ms cpu", b.label, ms_str(t.cpu_ns));
            row.push(t);
        }
        let c = ms.vm().counters();
        eprintln!(
            "   [counters: {} bytecodes, {} sends, {:.1}% cache hits, {} scavenges]",
            c.bytecodes,
            c.sends,
            100.0 * c.cache_hits as f64 / (c.cache_hits + c.cache_misses).max(1) as f64,
            ms.mem().gc_stats().scavenges,
        );
        results.push(row);
        ms.shutdown();
    }

    // ---- Table 2 ----------------------------------------------------
    println!("\nTable 2: measured CPU milliseconds per run (wall in parens)\n");
    print!("{:<36}", "state \\ benchmark");
    for b in TABLE2 {
        print!(" | {:>20}", short(b.label));
    }
    println!();
    for (si, state) in SystemState::ALL.iter().enumerate() {
        print!("{:<36}", state.label());
        for t in &results[si] {
            print!(
                " | {:>9} ({:>7})",
                ms_str(t.cpu_ns).trim(),
                format!("{:.1}", t.wall_ns / 1.0e6)
            );
        }
        println!();
    }

    println!("\npaper's Table 2 (seconds on the Firefly), for shape comparison:\n");
    print!("{:<36}", "state \\ benchmark");
    for b in TABLE2 {
        print!(" | {:>8}", short(b.label));
    }
    println!();
    for (si, state) in SystemState::ALL.iter().enumerate() {
        print!("{:<36}", state.label());
        for b in TABLE2 {
            print!(" | {:>8.1}", b.paper_secs[si]);
        }
        println!();
    }

    // ---- Figure 2: normalized to baseline ---------------------------
    println!("\nFigure 2: times normalized to baseline BS (ours vs paper)\n");
    println!(
        "{:<36} {:>7} {:>7} {:>7} {:>7}   (ours | paper)",
        "benchmark", "base", "MS", "+idle", "+busy"
    );
    let mut ours_norm = vec![[0.0f64; 4]; TABLE2.len()];
    for (bi, b) in TABLE2.iter().enumerate() {
        let base = results[0][bi].cpu_ns;
        for si in 0..4 {
            ours_norm[bi][si] = results[si][bi].cpu_ns / base;
        }
        print!("{:<36}", b.label);
        for v in ours_norm[bi] {
            print!(" {v:>7.2}");
        }
        print!("   |");
        for si in 0..4 {
            print!(" {:>5.2}", b.paper_secs[si] / b.paper_secs[0]);
        }
        println!();
    }

    println!("\nFigure 2 chart (normalized, ours):\n");
    let max = ours_norm.iter().flatten().fold(1.0f64, |m, &v| m.max(v));
    for (bi, b) in TABLE2.iter().enumerate() {
        println!("{}", b.label);
        for (si, state) in SystemState::ALL.iter().enumerate() {
            println!(
                "  {:<9} {:<40} {:.2}",
                short_state(*state),
                bar(ours_norm[bi][si], max, 40),
                ours_norm[bi][si]
            );
        }
    }

    // ---- Overhead summary (the paper's §4 headline numbers) ---------
    let mean = |si: usize| -> f64 {
        let s: f64 = (0..TABLE2.len()).map(|bi| ours_norm[bi][si]).sum();
        s / TABLE2.len() as f64
    };
    let worst = |si: usize| -> f64 {
        (0..TABLE2.len())
            .map(|bi| ours_norm[bi][si])
            .fold(0.0, f64::max)
    };
    println!("\noverhead summary (vs baseline BS):");
    println!(
        "  static MS overhead:      worst {:>5.0}%, mean {:>5.0}%   (paper: <15% worst)",
        (worst(1) - 1.0) * 100.0,
        (mean(1) - 1.0) * 100.0
    );
    println!(
        "  + trivial competition:   worst {:>5.0}%, mean {:>5.0}%   (paper: ~30% worst)",
        (worst(2) - 1.0) * 100.0,
        (mean(2) - 1.0) * 100.0
    );
    println!(
        "  + busy competition:      worst {:>5.0}%, mean {:>5.0}%   (paper: 65% worst, ~40% mean)",
        (worst(3) - 1.0) * 100.0,
        (mean(3) - 1.0) * 100.0
    );
    println!("\n(differences of less than 3% are not significant — paper, Table 2 note)");

    write_table2_json("BENCH_table2.json", &results);
    println!("wrote BENCH_table2.json");
}

/// Emits the full state × benchmark grid on the shared `mst-bench-rows/1`
/// row schema for CI artifact upload and regression diffing, paper
/// numbers included as informational (`s`-unit) rows.
fn write_table2_json(path: &str, results: &[Vec<Timing>]) {
    let mut rows = Vec::new();
    for (si, state) in SystemState::ALL.iter().enumerate() {
        let state_key = mst_bench::rows::slug(state.label());
        for (bi, b) in TABLE2.iter().enumerate() {
            let key = format!("table2.{state_key}.{}", mst_bench::rows::slug(b.label));
            let t = &results[si][bi];
            rows.push(Row::new(
                format!("{key}.cpu_ns"),
                t.cpu_ns,
                "ns",
                t.iters as u64,
            ));
            rows.push(Row::new(
                format!("{key}.wall_ns"),
                t.wall_ns,
                "ns",
                t.iters as u64,
            ));
            rows.push(Row::new(
                format!("{key}.paper_secs"),
                b.paper_secs[si],
                "s",
                1,
            ));
        }
    }
    mst_bench::rows::write_rows(path, "table2", &[], &rows);
}

fn short(label: &str) -> String {
    let words: Vec<&str> = label.split_whitespace().collect();
    words
        .iter()
        .map(|w| &w[..w.len().min(4)])
        .collect::<Vec<_>>()
        .join(" ")
}

fn short_state(s: SystemState) -> &'static str {
    match s {
        SystemState::BaselineBs => "baseline",
        SystemState::Ms => "MS",
        SystemState::MsIdle4 => "MS+idle",
        SystemState::MsBusy4 => "MS+busy",
    }
}
