//! Pause time of one generation scavenge as a function of helper count.
//!
//! Usage: `cargo run --release -p mst-bench --bin gcbench [--smoke | --fullgc]`
//!
//! The paper's motivation for drafting stopped processors into the
//! collector is that a scavenge pause is dominated by copying the live
//! set, and copying parallelizes. This benchmark builds one large live
//! graph, then scavenges it repeatedly with 1, 2, and 4 threads and
//! reports the best pause per helper count. The tenure threshold is set
//! above the maximum header age so the survivors ping-pong between the
//! semispaces forever: every measured round copies exactly the same live
//! set, and the helper count is the only variable.
//!
//! On a host with at least four cores the run **fails** (exit 1) if the
//! 4-helper pause is more than 5% worse than the serial one — the
//! regression gate for the parallel scavenger. With fewer cores the
//! comparison is printed but only warns, since helpers then time-slice
//! one CPU and "within noise of serial" is the best possible outcome.
//!
//! `--smoke` runs a short 2-helper pass with spurious condvar wakeups
//! injected underneath a real rendezvous (the interpreter's donation
//! path), auditing the heap after every collection. Both modes write
//! `BENCH_gc.json` for CI artifact upload.
//!
//! `--fullgc` measures the mark-compact collector instead: the mark phase
//! of a full collection over a pinned old-space live set with 1, 2, and 4
//! helpers, plus one incremental collection whose longest mark slice is
//! compared against the monolithic mark pause. Writes `BENCH_fullgc.json`.
//! On a host with at least four cores the run fails (exit 1) if the
//! 4-helper mark is slower than 0.7x serial; the incremental slice bound
//! (longest slice strictly below the monolithic mark) is enforced on any
//! host.

use mst_bench::harness::ns_human;
use mst_objmem::{MemoryConfig, ObjFormat, ObjectMemory, Oop, So};
use mst_telemetry::Row;
use mst_vkernel::SplitMix64;

/// Runs a leader-supplied world-stopped closure on `helpers` scoped
/// threads, the way the rendezvous does with drafted processors.
fn scope_runner(helpers: usize, f: &(dyn Fn(usize) + Sync)) {
    std::thread::scope(|s| {
        for slot in 1..helpers {
            s.spawn(move || f(slot));
        }
        f(0);
    });
}

/// A heap whose survivor spaces comfortably hold `live_words` and whose
/// tenure threshold can never be reached (ages saturate at `MAX_AGE`),
/// so repeated scavenges copy an unchanging live set.
fn bench_mem(live_words: usize) -> ObjectMemory {
    let mem = ObjectMemory::new(MemoryConfig {
        old_words: 256 << 10,
        eden_words: live_words + (live_words / 2) + (16 << 10),
        survivor_words: live_words + (live_words / 2) + (16 << 10),
        tenure_age: u8::MAX,
        ..MemoryConfig::default()
    });
    let nil = mem
        .allocate_old(Oop::ZERO, ObjFormat::Pointers, 0, 0)
        .expect("fresh old space");
    mem.specials().set(So::Nil, nil);
    mem
}

/// Builds a wide, shared object graph of roughly `live_words` heap words,
/// reachable from `lanes` roots. Every node is attached to a free slot of
/// an earlier node the moment it is allocated, so the whole allocation is
/// live; leftover slots become cross-links (sharing) or small integers.
fn build_live_graph(
    mem: &ObjectMemory,
    seed: u64,
    live_words: usize,
    lanes: usize,
) -> Vec<mst_objmem::RootHandle> {
    let tok = mem.new_token();
    let mut rng = SplitMix64::new(seed);
    let mut roots = Vec::with_capacity(lanes);
    let mut all: Vec<Oop> = Vec::new();
    // (object, next free slot, slot count) — parents still accepting kids.
    let mut open: Vec<(Oop, usize, usize)> = Vec::new();
    let mut words = 0usize;
    while words < live_words {
        let body = rng.gen_range(2, 24) as usize;
        let obj = mem
            .alloc_array(&tok, body)
            .expect("eden sized for the live set");
        words += body + 2;
        if roots.len() < lanes {
            roots.push(mem.new_root(obj));
        } else {
            // Attach to a random open parent so the node is reachable.
            let pick = rng.gen_range(0, open.len() as u64) as usize;
            let (parent, slot, nslots) = &mut open[pick];
            mem.store(*parent, *slot, obj);
            *slot += 1;
            if *slot == *nslots {
                open.swap_remove(pick);
            }
        }
        all.push(obj);
        // Reserve up to 3 child slots; the rest are filled below.
        let kids = (rng.gen_range(1, 4) as usize).min(body);
        open.push((obj, 0, kids));
        for i in kids..body {
            let v = if rng.gen_range(0, 100) < 25 {
                *rng.choose(&all).expect("at least one node")
            } else {
                Oop::from_small_int(rng.gen_range_i64(-1000, 1000))
            };
            mem.store(obj, i, v);
        }
    }
    roots
}

struct HelperRun {
    helpers: usize,
    best_ns: u64,
    mean_ns: u64,
    rounds: usize,
}

/// Scavenges `rounds` times with `helpers` threads, auditing the heap
/// after every collection, and returns best/mean pause.
fn measure(mem: &ObjectMemory, helpers: usize, rounds: usize) -> HelperRun {
    let mut pauses = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let out = mem
            .try_scavenge_parallel(helpers, scope_runner)
            .expect("old space untouched by a tenure-free scavenge");
        mem.verify_heap().assert_clean();
        pauses.push(out.nanos);
    }
    HelperRun {
        helpers,
        best_ns: *pauses.iter().min().expect("rounds >= 1"),
        mean_ns: pauses.iter().sum::<u64>() / pauses.len() as u64,
        rounds,
    }
}

fn write_json(path: &str, live_words: usize, cores: usize, chaos: bool, runs: &[HelperRun]) {
    let mut rows = Vec::new();
    for r in runs {
        let h = r.helpers;
        let n = r.rounds as u64;
        rows.push(Row::new(
            format!("scavenge.h{h}.best_ns"),
            r.best_ns as f64,
            "ns",
            n,
        ));
        rows.push(Row::new(
            format!("scavenge.h{h}.mean_ns"),
            r.mean_ns as f64,
            "ns",
            n,
        ));
    }
    mst_bench::rows::write_rows(
        path,
        "gcbench",
        &[
            ("live_words", live_words.to_string()),
            ("cores", cores.to_string()),
            ("chaos", chaos.to_string()),
        ],
        &rows,
    );
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Short chaos pass: 2 helpers drafted through a real rendezvous while
/// spurious condvar wakeups fire underneath every wait.
fn smoke() {
    use mst_vkernel::fault;
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            fault::disable();
        }
    }
    let _disarm = Disarm;
    fault::install(fault::ChaosConfig {
        seed: 0x6CBE_4C4A,
        rate: 0.4,
        sites: fault::FaultSite::SpuriousWake.bit(),
    });

    let live_words = 16 << 10;
    let mem = bench_mem(live_words);
    let roots = build_live_graph(&mem, 0xB00C, live_words, 32);
    let rdv = std::sync::Arc::new(mst_vkernel::Rendezvous::new());
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut pauses = Vec::new();
    std::thread::scope(|s| {
        for _ in 0..2 {
            let rdv = std::sync::Arc::clone(&rdv);
            let stop = std::sync::Arc::clone(&stop);
            s.spawn(move || {
                let me = rdv.participant();
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    if rdv.poll() {
                        me.park();
                    }
                    std::hint::spin_loop();
                }
            });
        }
        let me = rdv.participant();
        for _ in 0..8 {
            let guard = me.stop_world();
            let out = mem
                .try_scavenge_parallel(2, |n, f| {
                    guard.run_stopped(n, f);
                })
                .expect("old space untouched by a tenure-free scavenge");
            drop(guard);
            mem.verify_heap().assert_clean();
            pauses.push(out.nanos);
        }
        stop.store(true, std::sync::atomic::Ordering::Release);
    });
    drop(roots);

    let run = HelperRun {
        helpers: 2,
        best_ns: *pauses.iter().min().expect("eight rounds"),
        mean_ns: pauses.iter().sum::<u64>() / pauses.len() as u64,
        rounds: pauses.len(),
    };
    println!(
        "smoke: {} chaotic 2-helper scavenges of {} live words, all audits clean \
         (best {}, mean {})",
        run.rounds,
        live_words,
        ns_human(run.best_ns as f64),
        ns_human(run.mean_ns as f64)
    );
    write_json("BENCH_gc.json", live_words, available_cores(), true, &[run]);
}

/// A heap whose old space comfortably holds `live_words` of pinned live
/// data plus compaction headroom; eden stays small (full GC is the
/// subject, not scavenging).
fn fullgc_mem(live_words: usize) -> ObjectMemory {
    let mem = ObjectMemory::new(MemoryConfig {
        old_words: live_words + (live_words / 2) + (64 << 10),
        eden_words: 16 << 10,
        survivor_words: 8 << 10,
        ..MemoryConfig::default()
    });
    let nil = mem
        .allocate_old(Oop::ZERO, ObjFormat::Pointers, 0, 0)
        .expect("fresh old space");
    mem.specials().set(So::Nil, nil);
    mem
}

/// Like [`build_live_graph`] but allocating directly in old space, so the
/// graph is the mark phase's workload rather than the scavenger's.
fn build_old_live_graph(
    mem: &ObjectMemory,
    seed: u64,
    live_words: usize,
    lanes: usize,
) -> Vec<mst_objmem::RootHandle> {
    let mut rng = SplitMix64::new(seed);
    let mut roots = Vec::with_capacity(lanes);
    let mut all: Vec<Oop> = Vec::new();
    let mut open: Vec<(Oop, usize, usize)> = Vec::new();
    let mut words = 0usize;
    while words < live_words {
        let body = rng.gen_range(2, 24) as usize;
        let obj = mem
            .alloc_array_old(body)
            .expect("old space sized for the live set");
        words += body + 2;
        if roots.len() < lanes {
            roots.push(mem.new_root(obj));
        } else {
            let pick = rng.gen_range(0, open.len() as u64) as usize;
            let (parent, slot, nslots) = &mut open[pick];
            mem.store(*parent, *slot, obj);
            *slot += 1;
            if *slot == *nslots {
                open.swap_remove(pick);
            }
        }
        all.push(obj);
        let kids = (rng.gen_range(1, 4) as usize).min(body);
        open.push((obj, 0, kids));
        for i in kids..body {
            let v = if rng.gen_range(0, 100) < 25 {
                *rng.choose(&all).expect("at least one node")
            } else {
                Oop::from_small_int(rng.gen_range_i64(-1000, 1000))
            };
            mem.store(obj, i, v);
        }
    }
    roots
}

struct FullGcRun {
    helpers: usize,
    best_mark_ns: u64,
    mean_mark_ns: u64,
    best_total_ns: u64,
    best_update_ns: u64,
    best_move_ns: u64,
    rounds: usize,
}

/// Runs `rounds` full collections with `helpers` threads (marking *and*
/// the compaction back-end), auditing after each, and returns the best
/// per-phase pauses. Each round rotates a garbage/live batch above the
/// settled base set, so the compactor really slides objects every time —
/// an idle settled heap would give the move phase nothing to do.
fn measure_fullgc(mem: &ObjectMemory, helpers: usize, rounds: usize) -> FullGcRun {
    let mut marks = Vec::with_capacity(rounds);
    let mut totals = Vec::with_capacity(rounds);
    let mut updates = Vec::with_capacity(rounds);
    let mut moves = Vec::with_capacity(rounds);
    let mut batch: Vec<mst_objmem::RootHandle> = Vec::new();
    for _ in 0..rounds {
        // Last round's batch becomes interleaved garbage below this
        // round's live batch: a constant per-round slide workload.
        batch.clear();
        for _ in 0..128 {
            mem.alloc_array_old(30).expect("churn headroom"); // garbage
            let live = mem.alloc_array_old(30).expect("churn headroom");
            batch.push(mem.new_root(live));
        }
        let out = mem.full_gc_with(helpers, scope_runner);
        assert!(out.report.is_clean(), "{}", out.report);
        mem.verify_heap().assert_clean();
        marks.push(out.mark_nanos);
        totals.push(out.total_nanos);
        updates.push(out.update_nanos);
        moves.push(out.move_nanos);
    }
    FullGcRun {
        helpers,
        best_mark_ns: *marks.iter().min().expect("rounds >= 1"),
        mean_mark_ns: marks.iter().sum::<u64>() / marks.len() as u64,
        best_total_ns: *totals.iter().min().expect("rounds >= 1"),
        best_update_ns: *updates.iter().min().expect("rounds >= 1"),
        best_move_ns: *moves.iter().min().expect("rounds >= 1"),
        rounds,
    }
}

struct IncrementalRun {
    slice_budget_words: usize,
    slices: usize,
    max_slice_ns: u64,
    finish_ns: u64,
    mark_ns: u64,
}

/// One incremental collection over the same pinned live set, timing every
/// bounded mark slice individually (the number the pause-bound gate cares
/// about) plus the monolithic finish.
fn measure_incremental(mem: &ObjectMemory, budget_words: usize) -> IncrementalRun {
    assert!(mem.full_gc_begin(), "window must open on a scavenged heap");
    let mut slices = 0usize;
    let mut max_slice_ns = 0u64;
    let mut mark_ns = 0u64;
    loop {
        let t = std::time::Instant::now();
        let done = mem.full_gc_mark_slice(budget_words);
        let ns = t.elapsed().as_nanos() as u64;
        slices += 1;
        max_slice_ns = max_slice_ns.max(ns);
        mark_ns += ns;
        if done {
            break;
        }
    }
    let t = std::time::Instant::now();
    let out = mem.full_gc_finish();
    let finish_ns = t.elapsed().as_nanos() as u64;
    assert!(out.report.is_clean(), "{}", out.report);
    mem.verify_heap().assert_clean();
    IncrementalRun {
        slice_budget_words: budget_words,
        slices,
        max_slice_ns,
        finish_ns,
        mark_ns,
    }
}

fn write_fullgc_json(
    path: &str,
    live_words: usize,
    cores: usize,
    runs: &[FullGcRun],
    incr: &IncrementalRun,
) {
    let mut rows = Vec::new();
    for r in runs {
        let h = r.helpers;
        let n = r.rounds as u64;
        rows.push(Row::new(
            format!("fullgc.h{h}.best_mark_ns"),
            r.best_mark_ns as f64,
            "ns",
            n,
        ));
        rows.push(Row::new(
            format!("fullgc.h{h}.mean_mark_ns"),
            r.mean_mark_ns as f64,
            "ns",
            n,
        ));
        rows.push(Row::new(
            format!("fullgc.h{h}.best_total_ns"),
            r.best_total_ns as f64,
            "ns",
            n,
        ));
        rows.push(Row::new(
            format!("fullgc.h{h}.best_update_ns"),
            r.best_update_ns as f64,
            "ns",
            n,
        ));
        rows.push(Row::new(
            format!("fullgc.h{h}.best_move_ns"),
            r.best_move_ns as f64,
            "ns",
            n,
        ));
    }
    let slices = incr.slices as u64;
    rows.push(Row::new(
        "fullgc.incr.max_slice_ns",
        incr.max_slice_ns as f64,
        "ns",
        slices,
    ));
    rows.push(Row::new(
        "fullgc.incr.mark_ns",
        incr.mark_ns as f64,
        "ns",
        slices,
    ));
    rows.push(Row::new(
        "fullgc.incr.finish_ns",
        incr.finish_ns as f64,
        "ns",
        1,
    ));
    rows.push(Row::new(
        "fullgc.incr.slices",
        incr.slices as f64,
        "count",
        1,
    ));
    mst_bench::rows::write_rows(
        path,
        "gcbench-fullgc",
        &[
            ("live_words", live_words.to_string()),
            ("cores", cores.to_string()),
            ("slice_budget_words", incr.slice_budget_words.to_string()),
        ],
        &rows,
    );
}

fn fullgc_bench() {
    let cores = available_cores();
    let live_words = 192 << 10; // ~1.5 MB of pinned old-space live data
    let rounds = 10;
    println!("gcbench --fullgc: mark-compact pause vs. helper count ({cores} cores visible)");
    let mem = fullgc_mem(live_words);
    let roots = build_old_live_graph(&mem, 0x6C_BE4C, live_words, 128);
    // One collection up front settles the heap (everything is live, so
    // later rounds mark and slide an unchanging object population).
    mem.full_gc();
    mem.verify_heap().assert_clean();

    let mut runs = Vec::new();
    for helpers in [1usize, 2, 4] {
        let run = measure_fullgc(&mem, helpers, rounds);
        println!(
            "  helpers={}  mark best {:>10}  mean {:>10}  update best {:>10}  \
             move best {:>10}  total best {:>10}  ({} rounds)",
            run.helpers,
            ns_human(run.best_mark_ns as f64),
            ns_human(run.mean_mark_ns as f64),
            ns_human(run.best_update_ns as f64),
            ns_human(run.best_move_ns as f64),
            ns_human(run.best_total_ns as f64),
            run.rounds
        );
        runs.push(run);
    }

    // The incremental window needs a scavenge-fresh heap (a monolithic
    // full GC parks the no-scavenge latch that `full_gc_begin` respects).
    mem.try_scavenge().expect("old space has headroom");
    let incr = measure_incremental(&mem, 32 << 10);
    println!(
        "  incremental: {} slices of <= {} words; max slice {:>10}, finish {:>10}, mark {:>10}",
        incr.slices,
        incr.slice_budget_words,
        ns_human(incr.max_slice_ns as f64),
        ns_human(incr.finish_ns as f64),
        ns_human(incr.mark_ns as f64)
    );
    drop(roots);

    write_fullgc_json("BENCH_fullgc.json", live_words, cores, &runs, &incr);
    println!("wrote BENCH_fullgc.json");

    let serial_mark = runs[0].best_mark_ns as f64;
    let par4_mark = runs[2].best_mark_ns as f64;
    let ratio = par4_mark / serial_mark;
    let mut failed = false;
    if cores >= 4 {
        if ratio > 0.7 {
            eprintln!(
                "FAIL: 4-helper mark is {ratio:.2}x serial on a {cores}-core host \
                 (budget: 0.70x)"
            );
            failed = true;
        } else {
            println!("PASS: 4-helper mark is {ratio:.2}x serial (budget: 0.70x)");
        }
    } else {
        println!(
            "note: only {cores} core(s) visible; 4-helper mark is {ratio:.2}x serial \
             (gate requires >= 4 cores)"
        );
    }
    // Same budget for the parallelized compaction back-end: the update
    // phase shards the reference rewrite, the move phase the chunked
    // slide. Gated together because sliding compaction's move runs are
    // inherently serial past the first gap — update is the bulk.
    let serial_compact = (runs[0].best_update_ns + runs[0].best_move_ns) as f64;
    let par4_compact = (runs[2].best_update_ns + runs[2].best_move_ns) as f64;
    let cratio = par4_compact / serial_compact;
    if cores >= 4 {
        if cratio > 0.7 {
            eprintln!(
                "FAIL: 4-helper update+move is {cratio:.2}x serial on a {cores}-core \
                 host (budget: 0.70x)"
            );
            failed = true;
        } else {
            println!("PASS: 4-helper update+move is {cratio:.2}x serial (budget: 0.70x)");
        }
    } else {
        println!(
            "note: only {cores} core(s) visible; 4-helper update+move is {cratio:.2}x \
             serial (gate requires >= 4 cores)"
        );
    }
    // The slice bound holds on any host: that is the point of incremental
    // marking, and it does not depend on parallelism.
    if incr.max_slice_ns >= serial_mark as u64 {
        eprintln!(
            "FAIL: longest incremental mark slice ({}) is not below the monolithic \
             mark pause ({})",
            ns_human(incr.max_slice_ns as f64),
            ns_human(serial_mark)
        );
        failed = true;
    } else {
        println!(
            "PASS: longest incremental mark slice is {:.2}x the monolithic mark pause",
            incr.max_slice_ns as f64 / serial_mark
        );
    }
    if failed {
        std::process::exit(1);
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    if std::env::args().any(|a| a == "--fullgc") {
        fullgc_bench();
        return;
    }

    let cores = available_cores();
    let live_words = 192 << 10; // ~1.5 MB of live data per scavenge
    let rounds = 15;
    println!("gcbench: scavenge pause vs. helper count ({cores} cores visible)");
    let mem = bench_mem(live_words);
    let roots = build_live_graph(&mem, 0x6C_BE4C, live_words, 128);
    // First scavenge evacuates eden; measured rounds ping-pong survivors.
    mem.scavenge();
    mem.verify_heap().assert_clean();

    let mut runs = Vec::new();
    let serial_words = mem.gc_stats().words_survived;
    for helpers in [1usize, 2, 4] {
        let run = measure(&mem, helpers, rounds);
        println!(
            "  helpers={}  best {:>10}  mean {:>10}  ({} rounds)",
            run.helpers,
            ns_human(run.best_ns as f64),
            ns_human(run.mean_ns as f64),
            run.rounds
        );
        runs.push(run);
    }
    drop(roots);
    let copied = mem.gc_stats().words_survived - serial_words;
    println!(
        "  [{} words copied per scavenge; no tenuring]",
        copied / (3 * rounds) as u64
    );

    write_json("BENCH_gc.json", live_words, cores, false, &runs);
    println!("wrote BENCH_gc.json");

    let serial = runs[0].best_ns as f64;
    let par4 = runs[2].best_ns as f64;
    let ratio = par4 / serial;
    if cores >= 4 {
        if ratio > 1.05 {
            eprintln!(
                "FAIL: 4-helper pause is {:.2}x serial on a {cores}-core host \
                 (budget: 1.05x)",
                ratio
            );
            std::process::exit(1);
        }
        println!("PASS: 4-helper pause is {ratio:.2}x serial (budget: 1.05x)");
    } else {
        println!(
            "note: only {cores} core(s) visible; 4-helper pause is {ratio:.2}x serial \
             (gate requires >= 4 cores)"
        );
    }
}
