//! Unified profile pipeline: Table 2 busy-state workload → `PROFILE.json`.
//!
//! Usage: `cargo run --release -p mst-bench --bin profile [--smoke] [--out FILE]`
//!
//! Runs a subset of the Table 2 macro benchmarks in the MS+4-busy system
//! state with per-processor state timelines enabled, interleaving forced
//! scavenges and full collections so the GC pause log fills, then captures
//! the whole measurement substrate — utilization timelines, registry
//! counters and histograms, pause-phase attribution — into a versioned
//! [`ProfileReport`](mst_telemetry::ProfileReport) written to
//! `PROFILE.json` (override with `--out`).
//!
//! The run is self-gating (exit 1 on violation):
//!
//! * **accounting is exact** — over the measured window, every processor's
//!   per-state nanoseconds must sum to the window wall-clock within 1%,
//!   and the aggregate across processors to `wall × processors` within 1%
//!   (a leak here means some code path switches state without closing the
//!   previous interval);
//! * **pauses are attributed** — every recorded GC pause must have at
//!   least 95% of its duration attributed to named phases.
//!
//! `--smoke` shortens the workload for CI; the gates are identical.

use std::time::Instant;

use mst_bench::harness::system_for_state;
use mst_core::SystemState;
use mst_telemetry::timeline::{self, ProcTimeline};
use mst_telemetry::{pauselog, profile, registry};

/// Minimum measured-window wall clock, long enough for several scavenge
/// and full-GC pauses per processor state.
const MIN_WALL_NS: u64 = 4_000_000_000;
const MIN_WALL_NS_SMOKE: u64 = 1_200_000_000;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "PROFILE.json".to_string());

    // Fresh instruments: the timelines, pause log, and registry are
    // process-global, and the report should describe this run only.
    timeline::set_enabled(true);
    registry::reset_all();
    pauselog::clear();
    timeline::reset();

    // The main thread is virtual processor 0 (the unsupervised main
    // interpreter); workers 1..N register their own sessions.
    let _session = timeline::register(0);
    let state = SystemState::MsBusy4;
    let mut ms = system_for_state(state);
    // Workers 1..N are in the roster; the main interpreter (processor 0)
    // runs on this thread, unsupervised.
    let processors = ms.vm().processor_roster().len() + 1;

    // Wait until every worker's timeline session is open, so the measured
    // window is wholly inside every processor's session and the
    // wall × processors identity holds exactly.
    let spawn_deadline = Instant::now() + std::time::Duration::from_secs(5);
    while timeline::snapshot().len() < processors {
        assert!(
            Instant::now() < spawn_deadline,
            "workers never registered timeline sessions"
        );
        std::thread::yield_now();
    }

    let selectors: &[&str] = if smoke {
        &["printClassDefinition", "findAllImplementors"]
    } else {
        &[
            "printClassDefinition",
            "findAllImplementors",
            "createInspectorView",
            "printClassHierarchy",
        ]
    };
    let prepared: Vec<_> = selectors
        .iter()
        .map(|sel| {
            ms.prepare(&format!("Benchmark {sel}"))
                .expect("benchmark selector must compile")
        })
        .collect();
    let min_wall = if smoke {
        MIN_WALL_NS_SMOKE
    } else {
        MIN_WALL_NS
    };

    eprintln!(
        "profile: {} workload, {} processors, {} selectors, >= {:.1}s window",
        state.label(),
        processors,
        selectors.len(),
        min_wall as f64 / 1e9
    );

    // ---- Measured window -------------------------------------------------
    let t0 = mst_telemetry::now_ns();
    let s0 = timeline::snapshot();
    let mut iters = 0usize;
    loop {
        let p = &prepared[iters % prepared.len()];
        ms.run_prepared(p).expect("benchmark run");
        ms.collect_garbage();
        if iters % 3 == 2 {
            ms.full_collect();
        }
        iters += 1;
        if iters >= prepared.len() && mst_telemetry::now_ns() - t0 >= min_wall {
            break;
        }
    }
    ms.full_collect();
    let s1 = timeline::snapshot();
    let t1 = mst_telemetry::now_ns();
    let wall_ns = t1 - t0;

    let utilization = window_diff(&s0, &s1, t0, t1);
    let mut failed = false;

    // Gate 1: per-processor accounting over the window.
    let mut agg = 0u64;
    for t in &utilization {
        agg += t.total_ns();
        let drift = t.total_ns().abs_diff(wall_ns);
        let pct = drift as f64 * 100.0 / wall_ns as f64;
        if pct > 1.0 {
            eprintln!(
                "FAIL: p{} accounted {} of {} window ns ({pct:.2}% drift, budget 1%)",
                t.proc,
                t.total_ns(),
                wall_ns
            );
            failed = true;
        }
    }
    let expect = wall_ns * utilization.len() as u64;
    let agg_pct = agg.abs_diff(expect) as f64 * 100.0 / expect.max(1) as f64;
    if agg_pct > 1.0 {
        eprintln!(
            "FAIL: aggregate accounted {agg} ns vs wall x processors {expect} \
             ({agg_pct:.2}% drift, budget 1%)"
        );
        failed = true;
    } else {
        eprintln!(
            "PASS: state accounting covers wall x {} processors within {agg_pct:.3}%",
            utilization.len()
        );
    }

    // Gate 2: every pause >= 95% attributed to named phases.
    let (pauses, _dropped) = pauselog::snapshot();
    assert!(!pauses.is_empty(), "workload must record GC pauses");
    let mut worst = 100.0f64;
    for p in &pauses {
        worst = worst.min(p.coverage_pct());
        if p.coverage_pct() < 95.0 {
            eprintln!(
                "FAIL: {} pause at {} ns attributes only {:.1}% of {} ns (budget 95%)",
                p.kind,
                p.start_ns,
                p.coverage_pct(),
                p.total_ns
            );
            failed = true;
        }
    }
    if worst >= 95.0 {
        eprintln!(
            "PASS: {} pauses recorded, worst phase coverage {worst:.1}%",
            pauses.len()
        );
    }

    // ---- Report ----------------------------------------------------------
    let mut report = profile::capture(
        "profile.busy4",
        wall_ns,
        processors,
        vec![
            ("state".to_string(), state.label().to_string()),
            ("smoke".to_string(), smoke.to_string()),
            ("iters".to_string(), iters.to_string()),
            (
                "cores".to_string(),
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
                    .to_string(),
            ),
        ],
    );
    // Report the measured window, not the whole process lifetime: the
    // bootstrap and shutdown phases are single-threaded by construction
    // and would dilute every utilization column.
    report.utilization = utilization;
    std::fs::write(&out_path, report.to_json())
        .unwrap_or_else(|e| panic!("{out_path} must be writable: {e}"));
    println!("{}", mst_telemetry::report::text_report());
    println!("wrote {out_path} ({} rows)", report.rows().len());

    ms.shutdown();
    if failed {
        std::process::exit(1);
    }
}

/// Per-processor deltas between two timeline snapshots, presented as
/// window-spanning timelines (`opened_ns = t0`, `closed_ns = t1`). Only
/// processors present in both snapshots qualify — anything else was not
/// live across the whole window.
fn window_diff(s0: &[ProcTimeline], s1: &[ProcTimeline], t0: u64, t1: u64) -> Vec<ProcTimeline> {
    s1.iter()
        .filter_map(|after| {
            let before = s0.iter().find(|b| b.proc == after.proc)?;
            let mut ns = [0u64; timeline::NSTATES];
            for (i, cell) in ns.iter_mut().enumerate() {
                *cell = after.ns[i].saturating_sub(before.ns[i]);
            }
            Some(ProcTimeline {
                proc: after.proc,
                ns,
                opened_ns: t0,
                closed_ns: t1,
                sessions: after.sessions,
            })
        })
        .collect()
}
