//! Chaos soak: the Table 2 macro benchmarks in the busy-4 state with fault
//! injection armed — spin-lock acquire delays, safepoint-poll stalls,
//! spurious condvar wakeups, and probabilistic new-space allocation failure
//! ([`mst_vkernel::fault`]) — repeated across several seeds. After each
//! seed the injection is disarmed and the heap verifier must report a clean
//! audit: the point is not that the benchmarks run fast under fire, but
//! that nothing the faults provoke (extra scavenges, retried bytecodes,
//! low-space signals) corrupts the shared heap or wedges a rendezvous.
//!
//! The safepoint watchdog runs in `panic` mode, so a genuinely missed
//! rendezvous fails the soak with a diagnostic dump instead of hanging CI.
//!
//! A second, fail-operational phase then arms the destructive
//! `thread.panic` site with a kill budget of two and the degrade
//! supervisor policy: worker interpreters are killed mid-run, the
//! supervisor migrates their Processes and free contexts back to the
//! shared pool, and the Table 2 macros must still complete on the
//! surviving processors with a clean heap audit afterwards.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mst-bench --bin chaos                # 5 seeds, all 8 benchmarks
//! cargo run --release -p mst-bench --bin chaos -- --smoke     # 2 seeds, 2 benchmarks (CI)
//! cargo run --release -p mst-bench --bin chaos -- --seeds 10 --rate 0.001
//! ```

use mst_bench::harness::TABLE2;
use mst_core::{MsConfig, MsSystem, SupervisorPolicy, SystemState, Value};
use mst_telemetry as tel;
use mst_vkernel::fault::{self, ChaosConfig, FaultSite};
use mst_vkernel::WatchdogPolicy;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let n_seeds: u64 = arg_after(&args, "--seeds")
        .map(|v| v.parse().expect("--seeds takes an integer"))
        .unwrap_or(if smoke { 2 } else { 5 });
    let rate: f64 = arg_after(&args, "--rate")
        .map(|v| v.parse().expect("--rate takes a probability"))
        .unwrap_or(5e-4);
    let benches = if smoke { &TABLE2[..2] } else { &TABLE2[..] };

    println!(
        "chaos soak: {n_seeds} seeds, rate {rate}, {} benchmarks, busy-4 state",
        benches.len()
    );
    let mut dirty = 0u32;
    for i in 0..n_seeds {
        let seed = 0x5EED_C8A0_5000_0000 ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut ms = MsSystem::new(MsConfig {
            chaos: Some(ChaosConfig::new(seed, rate)),
            ..MsConfig::for_state(SystemState::MsBusy4)
        });
        // Faults slow everything down, but a rendezvous that takes this
        // long is a real wedge: dump the diagnostic and fail the soak.
        ms.vm().rendezvous.set_watchdog(60_000);
        ms.vm()
            .rendezvous
            .set_watchdog_policy(WatchdogPolicy::Panic);
        ms.enter_state(SystemState::MsBusy4);
        for b in benches {
            let p = ms
                .prepare(&format!("Benchmark {}", b.selector))
                .expect("benchmark compiles");
            ms.run_prepared(&p).expect("benchmark runs under chaos");
        }
        // The image must still execute a fresh doit while faults fire.
        assert_eq!(
            ms.evaluate("3 + 4").expect("doit under chaos"),
            Value::Int(7)
        );
        // Disarm, then audit with the world stopped: the heap must be
        // structurally sound after everything the faults provoked.
        fault::disable();
        let audit = ms.audit_heap();
        let verdict = if audit.is_clean() { "clean" } else { "DIRTY" };
        println!(
            "seed {i} ({seed:#018x}): audit {verdict} — {} objects, {} slots, {} errors",
            audit.objects_checked, audit.slots_checked, audit.error_count
        );
        if !audit.is_clean() {
            println!("{audit}");
            dirty += 1;
        }
        ms.shutdown();
    }

    println!(
        "faults fired: lock_delay={} poll_stall={} spurious_wake={} alloc_fail={}",
        tel::counter("chaos.lock_delay").get(),
        tel::counter("chaos.poll_stall").get(),
        tel::counter("chaos.spurious_wake").get(),
        tel::counter("chaos.alloc_fail").get(),
    );
    if dirty > 0 {
        eprintln!("chaos soak FAILED: {dirty}/{n_seeds} seeds left a dirty heap");
        std::process::exit(1);
    }
    println!("chaos soak OK: {n_seeds}/{n_seeds} seeds ended with a clean heap audit");

    if !fail_operational_phase(benches) {
        std::process::exit(1);
    }
}

/// Phase 2: kill worker interpreters mid-benchmark and prove the system
/// keeps working on the survivors. Returns `false` on failure.
fn fail_operational_phase(benches: &[mst_bench::harness::MacroBench]) -> bool {
    println!();
    println!("fail-operational phase: thread.panic armed (kill budget 2), degrade policy");
    let panics_before = tel::counter("chaos.thread_panic").get();
    // Arm ONLY the destructive site, with a hard cap of two kills so at
    // least two of the four workers survive. The config must be installed
    // before the system spawns its workers, and `MsConfig.chaos` stays
    // `None` so `try_new` does not re-install (which would reset the kill
    // budget to unlimited).
    fault::install(ChaosConfig {
        seed: 0xFA11_0B5E_7A11_0B5E,
        rate: 0.02,
        sites: FaultSite::ThreadPanic.bit(),
    });
    fault::set_kill_budget(2);
    let mut ms = MsSystem::new(MsConfig {
        supervisor: SupervisorPolicy::Degrade,
        ..MsConfig::for_state(SystemState::MsBusy4)
    });
    ms.vm().rendezvous.set_watchdog(60_000);
    ms.vm()
        .rendezvous
        .set_watchdog_policy(WatchdogPolicy::Panic);
    ms.enter_state(SystemState::MsBusy4);
    for b in benches {
        let p = ms
            .prepare(&format!("Benchmark {}", b.selector))
            .expect("benchmark compiles");
        ms.run_prepared(&p)
            .expect("benchmark completes on surviving processors");
    }
    assert_eq!(
        ms.evaluate("3 + 4").expect("doit after degradation"),
        Value::Int(7)
    );
    fault::disable();
    let kills = tel::counter("chaos.thread_panic").get() - panics_before;
    let roster = ms.processor_roster();
    let online = ms.processors_online();
    for row in &roster {
        println!(
            "  processor {}: {} (restarts {}{})",
            row.processor,
            if row.online { "online" } else { "offline" },
            row.restarts,
            row.last_fault
                .as_deref()
                .map(|f| format!(", last fault: {f}"))
                .unwrap_or_default()
        );
    }
    let audit = ms.audit_heap();
    println!(
        "  {kills} interpreters killed, {online}/{} workers online, audit {} — {} objects, {} slots",
        roster.len(),
        if audit.is_clean() { "clean" } else { "DIRTY" },
        audit.objects_checked,
        audit.slots_checked
    );
    ms.shutdown();
    if kills == 0 {
        eprintln!("fail-operational phase FAILED: no interpreter panic was injected");
        return false;
    }
    if !audit.is_clean() {
        eprintln!("fail-operational phase FAILED: dirty heap after degradation\n{audit}");
        return false;
    }
    println!("fail-operational OK: Table 2 macros completed on the survivors");
    true
}
