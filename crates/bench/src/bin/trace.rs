//! Runs the Table 2 macro benchmarks under tracing and writes a Chrome
//! `trace_event` file — load it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see scavenges, stop-the-world safepoints,
//! contended lock acquisitions, and doit spans across every interpreter
//! thread — plus the `vmstat`-style registry report on stdout.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mst-bench --bin trace              # all 8 benchmarks
//! cargo run --release -p mst-bench --bin trace -- --smoke   # short CI run, self-validating
//! cargo run --release -p mst-bench --bin trace -- --out my.json
//! ```

use mst_bench::harness::TABLE2;
use mst_core::{MsConfig, MsSystem, SystemState};
use mst_telemetry as tel;
use mst_telemetry::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "trace.json".to_string());

    // Touch the headline instruments up front so the report always has
    // their rows, even if a short run never exercises one of them.
    tel::counter("lock.contended");
    tel::histogram("lock.spin_iters");
    tel::histogram("gc.scavenge_pause_ns");
    tel::histogram("safepoint.time_to_stop_ns");

    // MsBusy4: four busy competitors on the worker interpreters, so the
    // trace shows multiple interpreter threads and real lock traffic.
    let mut ms = MsSystem::new(MsConfig {
        trace: true,
        ..MsConfig::for_state(SystemState::MsBusy4)
    });
    ms.enter_state(SystemState::MsBusy4);

    let benches = if smoke { &TABLE2[..2] } else { &TABLE2[..] };
    for b in benches {
        let p = ms
            .prepare(&format!("Benchmark {}", b.selector))
            .expect("benchmark compiles");
        ms.run_prepared(&p).expect("benchmark runs");
        println!("traced: {}", b.label);
    }
    // Allocation pressure plus an explicit collection guarantee at least
    // one scavenge span and one stop-the-world span in every trace.
    ms.evaluate("Benchmark allocHeavy: 100000")
        .expect("alloc churn");
    ms.collect_garbage();
    ms.shutdown();

    tel::chrome::write_chrome_json(&out_path).expect("write trace file");
    println!("\n{}", tel::report::text_report());
    println!("wrote {out_path} (load in chrome://tracing or ui.perfetto.dev)");

    if smoke {
        validate(&out_path);
    }
}

/// CI self-check: the written file must parse, carry the schema's required
/// keys, and contain GC + safepoint spans from at least two threads.
fn validate(path: &str) {
    let text = std::fs::read_to_string(path).expect("read trace back");
    let doc = tel::json::parse(&text).expect("trace.json must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let mut scavenges = 0u32;
    let mut safepoints = 0u32;
    let mut tids = std::collections::BTreeSet::new();
    let mut named_threads = 0u32;
    for ev in events {
        let name = ev.get("name").and_then(Json::as_str).unwrap_or_default();
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or_default();
        for key in ["name", "ph", "pid", "tid", "args"] {
            assert!(ev.get(key).is_some(), "event missing required key {key}");
        }
        if ph == "M" {
            named_threads += 1;
            continue;
        }
        assert!(ev.get("ts").is_some(), "non-metadata event missing ts");
        tids.insert(ev.get("tid").and_then(Json::as_f64).unwrap() as u64);
        match name {
            "gc.scavenge" => scavenges += 1,
            "safepoint.stop" | "safepoint.park" => safepoints += 1,
            _ => {}
        }
    }
    println!(
        "smoke: {} events, {} threads, {scavenges} scavenges, {safepoints} safepoint spans",
        events.len() - named_threads as usize,
        tids.len(),
    );
    assert!(scavenges >= 1, "trace must contain a gc.scavenge span");
    assert!(safepoints >= 1, "trace must contain a safepoint span");
    assert!(
        tids.len() >= 2,
        "trace must contain events from at least two threads"
    );
    assert!(named_threads >= 2, "thread_name metadata missing");
    println!("smoke: OK");
}
