//! Regenerates **Table 1** ("Process and interpreter relationships") from a
//! live system, checking each claim against the reproduction's actual
//! structure rather than printing static text.

use mst_core::{MsConfig, MsSystem, Value};

fn main() {
    let mut ms = MsSystem::new(MsConfig {
        processors: 2,
        ..MsConfig::default()
    });

    // Verify the virtual-image side of the table against the running image.
    let process_class = ms
        .evaluate("Processor thisProcess class name asString")
        .expect("thisProcess must answer");
    assert_eq!(process_class, Value::Str("Process".into()));
    let sched_class = ms
        .evaluate("Processor class name asString")
        .expect("Processor global must exist");
    assert_eq!(sched_class, Value::Str("ProcessorScheduler".into()));
    let code_class = ms
        .evaluate("(Object compiledMethodAt: #printString) class name asString")
        .expect("compiled methods must be reflectable");
    assert_eq!(code_class, Value::Str("CompiledMethod".into()));

    println!("Table 1: Process and interpreter relationships (verified live)\n");
    let rows = [
        (
            "Execution process is",
            "Smalltalk Process (class Process in the image)",
            "lightweight process (OS thread via mst-vkernel)",
        ),
        (
            "Compiled code consists of",
            "byte code (CompiledMethod objects)",
            "machine code (rustc output)",
        ),
        (
            "Code is written in",
            "Smalltalk (crates/image/src/st/*.st)",
            "Rust (this repository; C in the original)",
        ),
        (
            "Code and data reside in",
            "object memory (mst-objmem heap)",
            "address space (the host process)",
        ),
        (
            "Execution is by",
            "Smalltalk interpreter (mst-interp)",
            "machine processor",
        ),
        (
            "Execution scheduler is",
            "Smalltalk ProcessorScheduler",
            "host OS scheduler (V kernel in the original)",
        ),
    ];
    println!("{:<28} | {:<46} | Interpreter", "", "Virtual image");
    println!("{}", "-".repeat(130));
    for (what, image, interp) in rows {
        println!("{what:<28} | {image:<46} | {interp}");
    }
    println!("\nall image-side classes verified against the live system");
    ms.shutdown();
}
