//! Crash-recovery harness for the durable checkpoint store: serve load →
//! seeded process death inside the checkpoint commit protocol →
//! [`Server::recover`] → verify no committed state was lost.
//!
//! ```text
//! cargo run --release -p mst-bench --bin crashrec              # >=100 seeds
//! cargo run --release -p mst-bench --bin crashrec -- --smoke   # CI gate
//! ```
//!
//! Per seed: a fresh checkpoint directory, a small tenant fleet driving
//! doits with an every-request [`CheckpointPolicy`], one chaos session
//! crash (`serve.panic`) so chains span multiple epochs, then a seeded
//! death at a random byte boundary inside the commit protocol itself —
//! even seeds die mid-image-write (`ckpt.crash`), odd seeds tear the
//! MANIFEST append (`ckpt.torn_manifest`), and every seed stalls writes
//! through `ckpt.slow`. The manifest is then scanned *independently* of
//! the store (raw bytes through [`scan_manifest`]) to establish ground
//! truth, the server is dropped (process death), and a brand-new
//! [`Server::recover`] must restore every tenant to exactly its newest
//! manifest-committed epoch with its recorded restart count, a clean
//! `audit_heap`, a working session, and zero committed checkpoints lost.
//!
//! The run **fails** (exit 1) on any verification miss or if the armed
//! fault never fired. Writes `BENCH_recover.json` (`mst-bench-rows/1`)
//! with recovery-time p50/p99, gated by `benchcmp` against
//! `baselines/BENCH_recover.json`.

use std::collections::BTreeMap;
use std::time::Duration;

use mst_bench::rows::write_rows;
use mst_core::{MsConfig, MsSystem};
use mst_objmem::MemoryConfig;
use mst_serve::{
    chains_from_records, scan_manifest, CheckpointPolicy, Commit, RecoverySource, ServeConfig,
    ServeError, Server,
};
use mst_telemetry as tel;
use mst_telemetry::profile::Row;
use mst_vkernel::fault::{self, ChaosConfig, FaultSite};

/// Small, allocation-heavy doits: enough heap traffic that a checkpoint
/// after every request captures genuinely different images.
const DOITS: &[&str] = &[
    "(1 to: 30) inject: 0 into: [:a :b | a + b]",
    "| o | o := OrderedCollection new. 1 to: 25 do: [:i | o add: i * i]. o size",
    "'recover' , '/' , 7 printString",
];

fn pctl(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx]
}

/// Reads the manifest's committed chains straight from the raw bytes —
/// deliberately *not* through [`CheckpointStore`](mst_serve::CheckpointStore),
/// so the store's own recovery scan is verified against an independent
/// decode.
fn ground_truth(dir: &std::path::Path) -> BTreeMap<u64, Vec<Commit>> {
    let bytes = std::fs::read(dir.join("MANIFEST")).unwrap_or_default();
    chains_from_records(&scan_manifest(&bytes).records)
}

/// Drives `n` doits through `tenant`, retrying transient outcomes.
fn drive(server: &Server, tenant: usize, n: usize) {
    for i in 0..n {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match server.request(tenant, DOITS[i % DOITS.len()]) {
                Ok(_) => break,
                Err(ServeError::Rejected(_) | ServeError::SessionCrashed { .. })
                    if attempts < 8 =>
                {
                    continue;
                }
                Err(e) => panic!("tenant {tenant} doit {i}: {e}"),
            }
        }
    }
}

struct SeedOutcome {
    recover_ns: u64,
    tenant_ns: Vec<u64>,
    failures: Vec<String>,
}

/// One full death-and-recovery cycle under `seed`.
fn run_seed(
    seed: u64,
    template: &mst_core::SnapshotTemplate,
    base: MsConfig,
    tenants: usize,
) -> SeedOutcome {
    let dir = std::env::temp_dir().join(format!("mst_crashrec_{}_{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServeConfig {
        processors: 2,
        queue_cap: 8,
        queue_wait_limit: Duration::from_secs(5),
        checkpoint_dir: Some(dir.clone()),
        checkpoint: CheckpointPolicy {
            every_requests: Some(1),
            on_degrade: false,
        },
        retain: 2,
        ..ServeConfig::default()
    };
    let mut failures = Vec::new();

    // Phase 1: load with checkpoints committing after every request.
    let server = Server::new(template.clone(), base, cfg.clone(), tenants);
    for t in 0..tenants {
        drive(&server, t, 2);
    }
    // One chaos session crash on a rotating victim: its respawn bumps the
    // epoch, so later commits put a second epoch on its chain and record
    // a nonzero restart count — recovery must bring both back.
    let victim = (seed as usize) % tenants;
    server.set_victim(Some(victim));
    fault::install(ChaosConfig {
        seed: seed ^ 0x5EED_C8A5_0001,
        rate: 1.0,
        sites: FaultSite::ServePanic.bit(),
    });
    fault::set_kill_budget(1);
    // The doit must run long enough to reach a safepoint poll, where the
    // injected panic actually fires.
    let crashed = matches!(
        server.request(victim, "(1 to: 1000000) inject: 0 into: [:a :b | a + b]"),
        Err(ServeError::SessionCrashed { .. })
    );
    fault::disable();
    server.set_victim(None);
    if !crashed {
        failures.push(format!("seed {seed}: serve.panic never crashed the victim"));
    }
    drive(&server, victim, 2);

    // Phase 2: seeded death inside the commit protocol. Alternate the
    // crash point: mid-image-write on even seeds, mid-manifest-append on
    // odd; ckpt.slow stalls the write path either way.
    let site = if seed.is_multiple_of(2) {
        FaultSite::CkptCrash
    } else {
        FaultSite::CkptTornManifest
    };
    fault::set_stall_ns(50_000);
    fault::install(ChaosConfig {
        seed: seed ^ 0x5EED_C8A5_0002,
        rate: 1.0,
        sites: site.bit() | FaultSite::CkptSlow.bit(),
    });
    fault::set_kill_budget(1);
    let died = server.checkpoint(victim).is_err();
    fault::disable();
    if !died {
        failures.push(format!("seed {seed}: {} never fired", site.name()));
    }

    // Ground truth from the raw bytes, then "process death".
    let expected = ground_truth(&dir);
    drop(server);

    // Phase 3: whole-process recovery from the directory alone.
    let t0 = tel::now_ns();
    let (server, report) = Server::recover(template.clone(), base, cfg, tenants);
    let recover_ns = tel::now_ns().saturating_sub(t0);

    // Verify: every tenant with committed checkpoints landed on its
    // newest manifest-committed epoch with its recorded restart count...
    for (t, rec) in report.tenants.iter().enumerate() {
        let Some(chain) = expected.get(&(t as u64)).filter(|c| !c.is_empty()) else {
            if rec.source != RecoverySource::Cold {
                failures.push(format!("seed {seed} tenant {t}: recovered without commits"));
            }
            continue;
        };
        let newest = chain[0];
        if rec.source
            != (RecoverySource::Checkpoint {
                epoch: newest.epoch,
            })
        {
            failures.push(format!(
                "seed {seed} tenant {t}: source {:?}, wanted checkpoint at epoch {}",
                rec.source, newest.epoch
            ));
        }
        if server.epoch(t) != newest.epoch {
            failures.push(format!(
                "seed {seed} tenant {t}: epoch {} != committed {}",
                server.epoch(t),
                newest.epoch
            ));
        }
        if server.restarts(t) != newest.restarts {
            failures.push(format!(
                "seed {seed} tenant {t}: restarts {} != recorded {}",
                server.restarts(t),
                newest.restarts
            ));
        }
        // ...with zero committed checkpoints lost: the store's chain must
        // be exactly what the independent scan promised. (Checked before
        // the probe doit below, whose auto-checkpoint supersedes the
        // newest entry with a fresh image.)
        let store_chain = server
            .store()
            .map(|s| s.chain(t as u64))
            .unwrap_or_default();
        if store_chain != *chain {
            failures.push(format!(
                "seed {seed} tenant {t}: committed chain {:?} != expected {:?}",
                store_chain, chain
            ));
        }
        // ...and a clean heap under a session that actually serves.
        match server.audit(t) {
            Ok(audit) if audit.error_count == 0 => {}
            Ok(audit) => failures.push(format!(
                "seed {seed} tenant {t}: heap audit found {} errors: {:?}",
                audit.error_count, audit.errors
            )),
            Err(e) => failures.push(format!("seed {seed} tenant {t}: audit failed: {e}")),
        }
        if let Err(e) = server.request(t, "3 + 4") {
            failures.push(format!("seed {seed} tenant {t}: post-recovery doit: {e}"));
        }
    }
    let tenant_ns = report.tenants.iter().map(|r| r.duration_ns).collect();
    let _ = std::fs::remove_dir_all(&dir);
    SeedOutcome {
        recover_ns,
        tenant_ns,
        failures,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let arg_after = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seeds: u64 = arg_after("--seeds")
        .map(|v| v.parse().expect("--seeds takes an integer"))
        .unwrap_or(if smoke { 12 } else { 100 });
    let tenants: usize = arg_after("--tenants")
        .map(|v| v.parse().expect("--tenants takes an integer"))
        .unwrap_or(if smoke { 2 } else { 3 });
    let out_path = arg_after("--out").unwrap_or_else(|| "BENCH_recover.json".to_string());

    let base = MsConfig {
        processors: 2,
        memory: MemoryConfig {
            old_words: 1 << 20,
            eden_words: 64 << 10,
            survivor_words: 24 << 10,
            ..MemoryConfig::default()
        },
        ..MsConfig::default()
    };

    println!("crashrec: building snapshot template ({seeds} seeds, {tenants} tenants)");
    let template_path =
        std::env::temp_dir().join(format!("mst_crashrec_{}.image", std::process::id()));
    {
        let ms = MsSystem::new(base);
        ms.save_snapshot_file(&template_path)
            .expect("template snapshot saves");
        ms.shutdown();
    }
    let template = MsSystem::load_template(&template_path, base).expect("template loads");

    // The injected serve.panic crashes are the point; keep their
    // backtraces out of the log so real failures stay visible.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.starts_with("chaos: injected") {
            prev_hook(info);
        }
    }));

    let mut recover_ns = Vec::new();
    let mut tenant_ns = Vec::new();
    let mut failures: Vec<String> = Vec::new();
    for seed in 0..seeds {
        let out = run_seed(seed, &template, base, tenants);
        recover_ns.push(out.recover_ns);
        tenant_ns.extend(out.tenant_ns);
        failures.extend(out.failures);
        if (seed + 1) % 20 == 0 || seed + 1 == seeds {
            println!("  {}/{} seeds", seed + 1, seeds);
        }
    }

    recover_ns.sort_unstable();
    tenant_ns.sort_unstable();
    let (p50, p99) = (pctl(&recover_ns, 50.0), pctl(&recover_ns, 99.0));
    let tenant_p99 = pctl(&tenant_ns, 99.0);
    println!(
        "recover: p50 {:.2}ms p99 {:.2}ms over {} deaths ({} tenant recoveries, tenant p99 {:.2}ms)",
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
        recover_ns.len(),
        tenant_ns.len(),
        tenant_p99 as f64 / 1e6,
    );
    println!(
        "faults fired: ckpt.crash={} ckpt.torn_manifest={} ckpt.slow={} serve.panic={} \
         manifests torn={} fallbacks={}",
        tel::counter("chaos.ckpt_crash").get(),
        tel::counter("chaos.ckpt_torn_manifest").get(),
        tel::counter("chaos.ckpt_slow").get(),
        tel::counter("chaos.serve_panic").get(),
        tel::counter("serve.ckpt.manifest_torn").get(),
        tel::counter("serve.checkpoint_fallback").get(),
    );

    let rows = vec![
        Row::new("recover.p50_ns", p50 as f64, "ns", recover_ns.len() as u64),
        Row::new("recover.p99_ns", p99 as f64, "ns", recover_ns.len() as u64),
        Row::new(
            "recover.tenant_p99_ns",
            tenant_p99 as f64,
            "ns",
            tenant_ns.len() as u64,
        ),
        Row::new("recover.seeds", seeds as f64, "count", 1),
        Row::new(
            "recover.commits",
            tel::counter("serve.ckpt.commits").get() as f64,
            "count",
            1,
        ),
        Row::new(
            "recover.recovered_tenants",
            tel::counter("serve.ckpt.recovered").get() as f64,
            "count",
            1,
        ),
        Row::new("recover.failures", failures.len() as f64, "count", 1),
    ];
    write_rows(
        &out_path,
        "crashrec",
        &[
            ("seeds", seeds.to_string()),
            ("tenants", tenants.to_string()),
            ("mode", if smoke { "smoke" } else { "full" }.to_string()),
        ],
        &rows,
    );
    println!("wrote {out_path}");
    let _ = std::fs::remove_file(&template_path);

    if !failures.is_empty() {
        for f in failures.iter().take(20) {
            eprintln!("FAIL: {f}");
        }
        eprintln!("crashrec FAILED ({} verification misses)", failures.len());
        std::process::exit(1);
    }
    println!("crashrec OK: {seeds} seeded deaths, zero committed checkpoints lost");
}
