//! Regenerates **Table 3** ("Applications of the three strategies") by
//! introspecting the live configuration rather than printing static prose:
//! each row names the mechanism in this codebase that realizes it, and the
//! serialized resources print their actual lock-contention counters from a
//! short contended run.

use mst_core::{MsConfig, MsSystem, SystemState};

fn main() {
    let mut ms = MsSystem::new(MsConfig::for_state(SystemState::MsBusy4));
    ms.enter_state(SystemState::MsBusy4);
    // Drive enough contended work that the serialization rows have live
    // data: allocation pressure (forcing scavenges), display traffic, and
    // scheduler churn, all against the four busy competitors. Deterministic:
    // instead of sleeping a fixed wall-clock amount per round, keep working
    // until the instruments show the rows are populated — at least three
    // scavenges recorded in the telemetry registry and ten rounds of work —
    // bounded so a mis-sized heap cannot loop forever.
    let scavenge_pauses = mst_telemetry::histogram("gc.scavenge_pause_ns");
    let safepoint_stops = mst_telemetry::counter("safepoint.stops");
    let mut rounds = 0u32;
    loop {
        ms.evaluate("Benchmark createInspectorView").unwrap();
        ms.evaluate("Benchmark allocHeavy: 100000").unwrap();
        rounds += 1;
        let warmed =
            rounds >= 10 && scavenge_pauses.snapshot().count >= 3 && safepoint_stops.get() >= 3;
        if warmed || rounds >= 200 {
            break;
        }
    }

    let alloc = ms.mem().alloc_lock_stats();
    let entry = ms.mem().entry_table_lock_stats();
    let sched = ms.vm().sched_lock_stats();
    let display = ms.vm().display.queue_lock_stats();
    let counters = ms.vm().counters();
    let strategies = ms.config().strategies;

    println!("Table 3: Applications of the three strategies (live system)\n");
    println!("Serialization");
    println!(
        "  allocation          eden bump-pointer lock        ({} contended acquisitions)",
        alloc.contended
    );
    println!(
        "  garbage collection  stop-the-world rendezvous     ({} scavenges)",
        ms.mem().gc_stats().scavenges
    );
    println!(
        "  entry tables        remembered-set lock           ({} contended acquisitions)",
        entry.contended
    );
    println!(
        "  scheduling          single ready-queue lock       ({} contended acquisitions)",
        sched.contended
    );
    println!(
        "  I/O                 display/input queue locks     ({} contended acquisitions)",
        display.contended
    );
    println!("\nReplication");
    println!(
        "  interpretation      {} interpreter threads (one per virtual processor)",
        ms.config().processors
    );
    println!(
        "  method caches       policy {:?} ({} hits / {} misses)",
        strategies.cache, counters.cache_hits, counters.cache_misses
    );
    println!(
        "  free contexts       policy {:?} ({} recycled / {} allocated)",
        strategies.free_contexts, counters.contexts_recycled, counters.contexts_allocated
    );
    println!(
        "  new-object space    policy {:?} (paper future work)",
        strategies.alloc
    );
    println!("\nReorganization");
    println!("  active process      ready queue keeps running Processes (claim flag),");
    println!("                      activeProcess slot ignored; thisProcess/canRun:");
    let this_is_that = ms
        .evaluate("Processor canRun: Processor thisProcess")
        .unwrap();
    println!(
        "                      live check: Processor canRun: Processor thisProcess = {this_is_that}"
    );
    // The same serialization rows, regenerated from the unified registry:
    // every named lock publishes `lock.<name>.contended` / `.spin_iters`.
    println!("\n{}", mst_telemetry::report::text_report());
    ms.shutdown();
}
