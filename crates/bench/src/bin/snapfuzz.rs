//! Snapshot-loader fuzz smoke: corrupt a real image hundreds of ways and
//! require that every corrupted load fails *with a structured
//! [`SnapshotError`]* — never a panic, never a silently-accepted image.
//!
//! The corpus is deterministic (SplitMix64): single-bit flips spread over
//! the whole image, truncations at arbitrary byte lengths, and garbage
//! overwrites of the header region. A pristine copy must still round-trip.
//! Any input that loads successfully or panics the loader is written to
//! `snapfuzz-failures/` for replay and fails the run.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mst-bench --bin snapfuzz              # full corpus
//! cargo run --release -p mst-bench --bin snapfuzz -- --smoke   # CI-sized corpus
//! cargo run --release -p mst-bench --bin snapfuzz -- --seed 7  # different corpus
//! ```

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

use mst_core::{MsConfig, MsSystem, Value};
use mst_objmem::ObjectMemory;
use mst_vkernel::SplitMix64;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// One corpus entry: a name for the failure artifact and the mutated image.
struct Case {
    name: String,
    bytes: Vec<u8>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed: u64 = arg_after(&args, "--seed")
        .map(|v| v.parse().expect("--seed takes an integer"))
        .unwrap_or(0xF022_5EED_0F02_25ED);
    let (n_flips, n_truncs, n_garbage) = if smoke { (64, 16, 8) } else { (256, 40, 24) };

    // A real image, lightly mutated so the snapshot is not just the
    // pristine bootstrap: a runtime-compiled method and a live doit.
    let config = MsConfig {
        processors: 2,
        ..MsConfig::default()
    };
    let mut ms = MsSystem::new(config);
    ms.evaluate("Benchmark class compile: 'answer ^6 * 7'")
        .expect("compile failed");
    assert_eq!(ms.evaluate("Benchmark answer").unwrap(), Value::Int(42));
    let mut base = Vec::new();
    ms.save_snapshot(&mut base).expect("base snapshot");
    ms.shutdown();
    let memory = {
        let mut m = config.memory;
        m.sync = config.strategies.sync;
        m.alloc_policy = config.strategies.alloc;
        m
    };

    // The pristine copy must load; the fuzz is meaningless otherwise.
    ObjectMemory::load_snapshot(&mut base.as_slice(), memory)
        .expect("pristine snapshot must round-trip");

    println!(
        "snapfuzz: seed {seed:#x}, image {} bytes, {} bit flips + {} truncations + {} garbage overwrites",
        base.len(),
        n_flips,
        n_truncs,
        n_garbage
    );

    let mut rng = SplitMix64::new(seed);
    let mut corpus = Vec::new();
    for i in 0..n_flips {
        let pos = rng.gen_range(0, base.len() as u64) as usize;
        let bit = rng.gen_range(0, 8) as u8;
        let mut bytes = base.clone();
        bytes[pos] ^= 1 << bit;
        corpus.push(Case {
            name: format!("flip-{i}-byte{pos}-bit{bit}"),
            bytes,
        });
    }
    for i in 0..n_truncs {
        let cut = rng.gen_range(0, base.len() as u64) as usize;
        corpus.push(Case {
            name: format!("trunc-{i}-at{cut}"),
            bytes: base[..cut].to_vec(),
        });
    }
    for i in 0..n_garbage {
        // Stomp a run of bytes somewhere in the image with random junk —
        // headers, section lengths, and CRC trailers all get hit across
        // the corpus.
        let len = rng.gen_range(1, 128) as usize;
        let start = rng.gen_range(0, (base.len() - len) as u64) as usize;
        let mut bytes = base.clone();
        for b in &mut bytes[start..start + len] {
            *b = rng.gen_range(0, 256) as u8;
        }
        corpus.push(Case {
            name: format!("garbage-{i}-at{start}-len{len}"),
            bytes,
        });
    }

    let failures_dir = PathBuf::from("snapfuzz-failures");
    let mut failures = 0u32;
    let mut rejected = 0u32;
    for case in &corpus {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| {
            ObjectMemory::load_snapshot(&mut case.bytes.as_slice(), memory)
        }));
        let verdict = match outcome {
            Ok(Err(_)) => {
                rejected += 1;
                continue;
            }
            Ok(Ok(_)) => "loaded a corrupt image as if it were sound",
            Err(_) => "PANICKED instead of returning SnapshotError",
        };
        failures += 1;
        std::fs::create_dir_all(&failures_dir).expect("create snapfuzz-failures/");
        let path = failures_dir.join(format!("{}.image", case.name));
        std::fs::write(&path, &case.bytes).expect("write failing input");
        eprintln!(
            "FAIL {}: {verdict} (input saved to {})",
            case.name,
            path.display()
        );
    }

    println!(
        "snapfuzz: {rejected}/{} corrupted images rejected with SnapshotError",
        corpus.len()
    );
    if failures > 0 {
        eprintln!("snapfuzz FAILED: {failures} inputs were not cleanly rejected");
        std::process::exit(1);
    }
    println!("snapfuzz OK: every corruption yielded a structured error, zero panics");
}
