//! Shared helpers for the benchmark harness binaries (see `src/bin/`).
//!
//! The real content of this crate is its binaries — `table1`, `table2`,
//! `table3`, `ablations` — and the Criterion benches under `benches/`.

pub mod harness;
pub mod rows;
