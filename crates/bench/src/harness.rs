//! Measurement machinery shared by the table/figure binaries.
//!
//! ## Metric
//!
//! The paper measured wall-clock seconds of each macro benchmark on a real
//! five-processor Firefly. This reproduction runs its five virtual
//! processors as threads on the host, which in this environment has a
//! single core, so raw wall-clock time would charge the benchmark for
//! losing its time-slice — a cost the real machine did not impose. The
//! harness therefore reports **per-thread CPU time** of the benchmark
//! interpreter (read from `/proc/thread-self/schedstat`, nanosecond
//! resolution) as the primary number: it includes the benchmark's own work,
//! its lock spinning, its GC share and its atomic traffic — the overheads
//! the paper is about — while excluding simple descheduling. Wall-clock is
//! reported alongside for completeness. See DESIGN.md §2.

use std::sync::Mutex;
use std::time::Instant;

use mst_core::{MsConfig, MsSystem, SystemState};

/// One macro benchmark: harness name, selector, and the paper's Table 2
/// seconds for [baseline, MS, MS+4 idle, MS+4 busy].
#[derive(Debug, Clone, Copy)]
pub struct MacroBench {
    /// Column label (as in Table 2).
    pub label: &'static str,
    /// `Benchmark` class-side selector.
    pub selector: &'static str,
    /// The paper's measured seconds, per state.
    pub paper_secs: [f64; 4],
}

/// The eight macro benchmarks of Table 2, in column order, with the
/// paper's numbers.
pub const TABLE2: [MacroBench; 8] = [
    MacroBench {
        label: "read and write class organization",
        selector: "readWriteClassOrganization",
        paper_secs: [14.3, 15.6, 16.3, 18.4],
    },
    MacroBench {
        label: "print class definition",
        selector: "printClassDefinition",
        paper_secs: [8.1, 8.6, 8.8, 11.1],
    },
    MacroBench {
        label: "print class hierarchy",
        selector: "printClassHierarchy",
        paper_secs: [10.0, 11.4, 14.3, 16.4],
    },
    MacroBench {
        label: "find all calls",
        selector: "findAllCalls",
        paper_secs: [26.0, 27.0, 27.0, 33.0],
    },
    MacroBench {
        label: "find all implementors",
        selector: "findAllImplementors",
        paper_secs: [8.2, 8.9, 9.0, 11.2],
    },
    MacroBench {
        label: "create inspector view",
        selector: "createInspectorView",
        paper_secs: [6.1, 6.7, 7.4, 10.0],
    },
    MacroBench {
        label: "compile dummy method",
        selector: "compileDummyMethod",
        paper_secs: [22.0, 25.0, 27.0, 31.0],
    },
    MacroBench {
        label: "decompile class",
        selector: "decompileClass",
        paper_secs: [12.7, 14.1, 16.1, 18.2],
    },
];

/// Reads this thread's accumulated CPU time in nanoseconds.
///
/// # Panics
///
/// Panics if `/proc/thread-self/schedstat` is unavailable (non-Linux).
pub fn thread_cpu_ns() -> u64 {
    let s = std::fs::read_to_string("/proc/thread-self/schedstat")
        .expect("per-thread CPU time needs /proc/thread-self/schedstat");
    s.split_whitespace()
        .next()
        .and_then(|f| f.parse().ok())
        .expect("malformed schedstat")
}

/// A timed run: per-iteration CPU and wall nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timing {
    /// CPU nanoseconds per iteration (benchmark thread only).
    pub cpu_ns: f64,
    /// Wall nanoseconds per iteration.
    pub wall_ns: f64,
    /// Iterations measured.
    pub iters: u32,
}

/// Runs a prepared doit repeatedly until `min_cpu_ms` of *benchmark-thread
/// CPU time* has accumulated (at least `min_iters`), returning
/// per-iteration times.
///
/// To keep cells comparable across system states, eden is scavenged
/// *outside* each timed window: otherwise a state with busy competitors
/// hands the benchmark's GC work to whichever thread trips the collection,
/// and the benchmark can look spuriously cheaper than the baseline that
/// collected its own garbage. Collections forced mid-iteration by the
/// benchmark's own allocation still count — that is real benchmark cost.
pub fn time_prepared(
    ms: &mut MsSystem,
    prepared: &mst_core::Prepared,
    min_iters: u32,
    min_cpu_ms: u64,
) -> Timing {
    // Warm up: method caches, free lists, heap shape, branch predictors.
    for _ in 0..3 {
        ms.run_prepared(prepared).expect("benchmark failed");
    }
    let mut cpu_total = 0u64;
    let mut wall_total = 0u64;
    let mut iters = 0u32;
    let hard_deadline = Instant::now() + std::time::Duration::from_secs(30);
    loop {
        ms.collect_garbage(); // outside the timed window
        let w0 = Instant::now();
        let c0 = thread_cpu_ns();
        ms.run_prepared(prepared).expect("benchmark failed");
        cpu_total += thread_cpu_ns() - c0;
        wall_total += w0.elapsed().as_nanos() as u64;
        iters += 1;
        if iters >= min_iters && cpu_total >= min_cpu_ms * 1_000_000 {
            break;
        }
        if Instant::now() > hard_deadline {
            break; // heavily-contended cells stop at the deadline
        }
    }
    Timing {
        cpu_ns: cpu_total as f64 / iters as f64,
        wall_ns: wall_total as f64 / iters as f64,
        iters,
    }
}

/// Warms the host process (page faults, lazy relocations, allocator pools)
/// with a throwaway system so the first measured state is not penalized.
/// Call once before any measurement.
pub fn warm_process(selectors: &[&str]) {
    let mut ms = MsSystem::new(MsConfig::for_state(SystemState::Ms));
    for sel in selectors {
        let p = ms
            .prepare(&format!("Benchmark {sel}"))
            .expect("warmup compile");
        for _ in 0..3 {
            ms.run_prepared(&p).expect("warmup run");
        }
    }
    ms.shutdown();
}

/// Builds a system in the given Table 2 state (competitors spawned).
pub fn system_for_state(state: SystemState) -> MsSystem {
    let mut ms = MsSystem::new(MsConfig::for_state(state));
    ms.enter_state(state);
    // Give competitors a moment to be claimed by worker interpreters.
    if state.competitors() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    ms
}

// ---------------------------------------------------------------------
// Micro-benchmark runner (criterion replacement)
// ---------------------------------------------------------------------

/// A group of related micro-benchmarks (hermetic replacement for
/// `criterion`'s `BenchmarkGroup`): calibrates a batch size, runs each
/// closure for a wall-clock budget, and prints per-iteration wall and CPU
/// time plus optional throughput.
///
/// The budget per benchmark defaults to 100 ms and can be changed with
/// `MST_MICRO_MS` (e.g. `MST_MICRO_MS=500 cargo bench -p mst-bench`).
pub struct MicroGroup {
    name: &'static str,
    budget: std::time::Duration,
    /// Elements processed per iteration for the *next* `bench` call.
    throughput: Option<u64>,
}

impl MicroGroup {
    /// Starts a group and prints its header.
    pub fn new(name: &'static str) -> Self {
        let ms = std::env::var("MST_MICRO_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        println!("\n{name}");
        MicroGroup {
            name,
            budget: std::time::Duration::from_millis(ms),
            throughput: None,
        }
    }

    /// Declares elements-per-iteration for the next benchmark, so it also
    /// reports a rate.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Measures `f`, printing `group/name  time: … /iter  cpu: …` and — if
    /// a throughput was declared — `thrpt: … elem/s`.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) -> MicroResult {
        // Warm up and calibrate: grow the batch until one batch is long
        // enough to dwarf timer overhead (or a single run already is).
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                f();
            }
            if t.elapsed() >= std::time::Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Timed region: whole batches until the budget elapses.
        let wall0 = Instant::now();
        let cpu0 = thread_cpu_ns();
        let mut iters = 0u64;
        while wall0.elapsed() < self.budget {
            for _ in 0..batch {
                f();
            }
            iters += batch;
        }
        let cpu_total = thread_cpu_ns() - cpu0;
        let result = MicroResult {
            wall_ns: wall0.elapsed().as_nanos() as f64 / iters as f64,
            cpu_ns: cpu_total as f64 / iters as f64,
            iters,
        };
        let mut line = format!(
            "  {:<32} time: {:>10}/iter  cpu: {:>10}/iter  ({} iters)",
            format!("{}/{name}", self.name),
            ns_human(result.wall_ns),
            ns_human(result.cpu_ns),
            result.iters,
        );
        if let Some(elements) = self.throughput.take() {
            let rate = elements as f64 / (result.wall_ns / 1.0e9);
            line.push_str(&format!("  thrpt: {}/s", si_human(rate)));
        }
        println!("{line}");
        micro_results()
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((format!("{}/{name}", self.name), result));
        result
    }
}

/// Every [`MicroGroup::bench`] result recorded so far, in run order.
fn micro_results() -> &'static Mutex<Vec<(String, MicroResult)>> {
    static RESULTS: Mutex<Vec<(String, MicroResult)>> = Mutex::new(Vec::new());
    &RESULTS
}

/// Writes all recorded micro-benchmark results on the shared
/// `mst-bench-rows/1` row schema (two `ns` rows per benchmark:
/// `<group>/<name>.wall_ns` and `.cpu_ns`), for CI artifacts and
/// `benchcmp` regression diffing.
pub fn write_micro_json(path: &str) -> std::io::Result<()> {
    let results = micro_results().lock().unwrap_or_else(|p| p.into_inner());
    let mut rows = Vec::with_capacity(results.len() * 2);
    for (name, r) in results.iter() {
        rows.push(mst_telemetry::Row::new(
            format!("{name}.wall_ns"),
            r.wall_ns,
            "ns",
            r.iters,
        ));
        rows.push(mst_telemetry::Row::new(
            format!("{name}.cpu_ns"),
            r.cpu_ns,
            "ns",
            r.iters,
        ));
    }
    crate::rows::write_rows(path, "micro", &[], &rows);
    Ok(())
}

/// Per-iteration measurement from [`MicroGroup::bench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroResult {
    /// Wall nanoseconds per iteration.
    pub wall_ns: f64,
    /// CPU nanoseconds per iteration (benchmark thread only).
    pub cpu_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Formats nanoseconds with an adaptive unit (ns/µs/ms/s).
pub fn ns_human(ns: f64) -> String {
    if ns < 1.0e3 {
        format!("{ns:.1} ns")
    } else if ns < 1.0e6 {
        format!("{:.2} µs", ns / 1.0e3)
    } else if ns < 1.0e9 {
        format!("{:.2} ms", ns / 1.0e6)
    } else {
        format!("{:.2} s", ns / 1.0e9)
    }
}

/// Formats a rate with an SI prefix (k/M/G).
pub fn si_human(rate: f64) -> String {
    if rate < 1.0e3 {
        format!("{rate:.1}")
    } else if rate < 1.0e6 {
        format!("{:.1}k", rate / 1.0e3)
    } else if rate < 1.0e9 {
        format!("{:.1}M", rate / 1.0e6)
    } else {
        format!("{:.2}G", rate / 1.0e9)
    }
}

/// Renders a bar of up to `width` cells for `value` on a `max`-scaled axis.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms_str(ns: f64) -> String {
    format!("{:9.2}", ns / 1.0e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_cpu_time_advances() {
        // schedstat updates on scheduler ticks; spin until it moves (bounded
        // by a generous wall deadline so a broken reader still fails).
        let a = thread_cpu_ns();
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        let mut x = 0u64;
        loop {
            for i in 0..1_000_000u64 {
                x = x.wrapping_add(std::hint::black_box(i) * i);
            }
            std::hint::black_box(x);
            if thread_cpu_ns() > a {
                return;
            }
            assert!(Instant::now() < deadline, "CPU time never advanced");
        }
    }

    #[test]
    fn paper_table_is_monotone_per_row() {
        // The paper's own data: each benchmark gets slower (or equal)
        // moving baseline → MS → idle → busy. Our reproduction target.
        for b in TABLE2 {
            for i in 0..3 {
                assert!(
                    b.paper_secs[i] <= b.paper_secs[i + 1],
                    "{} paper data not monotone",
                    b.label
                );
            }
        }
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(20.0, 10.0, 10).chars().count(), 10);
    }
}
