//! The one place `BENCH_*.json` artifacts are written.
//!
//! Every bench binary used to invent its own JSON shape; `benchcmp` (and
//! any other diffing tool) then needed one parser per artifact. All
//! writers now funnel through [`write_rows`], emitting the shared
//! `mst-bench-rows/1` schema:
//!
//! ```json
//! {"schema":"mst-bench-rows/1","bench":"gcbench","meta":{"cores":"4"},
//!  "rows":[{"name":"scavenge.h1.best_ns","value":104000,"unit":"ns","n":15}]}
//! ```
//!
//! Rows with `unit == "ns"` are lower-is-better durations — the ones
//! `benchcmp` gates; other units (`count`, `pct`, …) ride along as
//! context. `PROFILE.json` embeds the identical row shape (see
//! [`mst_telemetry::profile`]), so one comparison tool covers everything.

use mst_telemetry::profile::{row_json, Row, ROWS_SCHEMA};

/// Serializes a row-based artifact document (without writing it).
pub fn rows_doc(bench: &str, meta: &[(&str, String)], rows: &[Row]) -> String {
    let mut out = format!(
        "{{\"schema\":\"{}\",\"bench\":\"{}\",\"meta\":{{",
        mst_telemetry::json::escape(ROWS_SCHEMA),
        mst_telemetry::json::escape(bench)
    );
    for (i, (k, v)) in meta.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":\"{}\"",
            mst_telemetry::json::escape(k),
            mst_telemetry::json::escape(v)
        ));
    }
    out.push_str("},\"rows\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&row_json(row));
    }
    out.push_str("]}");
    out
}

/// Validates and writes a row-based artifact to `path`.
///
/// # Panics
///
/// Panics if the generated document does not parse (a writer bug, never
/// an input problem) or the file cannot be written.
pub fn write_rows(path: &str, bench: &str, meta: &[(&str, String)], rows: &[Row]) {
    let out = rows_doc(bench, meta, rows);
    mst_telemetry::json::parse(&out).expect("generated rows JSON must parse");
    std::fs::write(path, out).unwrap_or_else(|e| panic!("{path} must be writable: {e}"));
}

/// Turns a free-form label into a row-name segment: lowercase, with
/// whitespace and punctuation collapsed to single underscores.
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut gap = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() {
            if gap && !out.is_empty() {
                out.push('_');
            }
            gap = false;
            out.push(c.to_ascii_lowercase());
        } else {
            gap = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_matches_shared_schema() {
        let rows = vec![
            Row::new("scavenge.h1.best_ns", 104_000.0, "ns", 15),
            Row::new("scavenge.h1.rounds", 15.0, "count", 1),
        ];
        let doc = rows_doc("gcbench", &[("cores", "4".to_string())], &rows);
        let parsed = mst_telemetry::json::parse(&doc).expect("valid JSON");
        assert_eq!(parsed.get("schema").unwrap().as_str().unwrap(), ROWS_SCHEMA);
        assert_eq!(parsed.get("bench").unwrap().as_str().unwrap(), "gcbench");
        assert_eq!(
            parsed
                .get("meta")
                .unwrap()
                .get("cores")
                .unwrap()
                .as_str()
                .unwrap(),
            "4"
        );
        let arr = parsed.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(
            arr[0].get("name").unwrap().as_str().unwrap(),
            "scavenge.h1.best_ns"
        );
        assert_eq!(arr[0].get("unit").unwrap().as_str().unwrap(), "ns");
        assert_eq!(arr[1].get("value").unwrap().as_f64().unwrap(), 15.0);
    }

    #[test]
    fn slugs_are_row_name_safe() {
        assert_eq!(
            slug("read and write class organization"),
            "read_and_write_class_organization"
        );
        assert_eq!(slug("MS + 4 busy"), "ms_4_busy");
        assert_eq!(slug("alloc/collect"), "alloc_collect");
    }
}
