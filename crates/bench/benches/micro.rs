//! Micro-benchmarks (experiment M1 in DESIGN.md): the rates that
//! contextualize the macro results — bytecode dispatch, full sends,
//! allocation, context activation, spin-lock acquisition, scavenging.
//!
//! Runs on the in-tree [`mst_bench::harness::MicroGroup`] runner instead
//! of `criterion`, per the hermetic-build policy. Invoke with
//! `cargo bench -p mst-bench`; tune the per-benchmark budget with
//! `MST_MICRO_MS` (milliseconds, default 100).

use mst_bench::harness::MicroGroup;
use mst_core::{MsConfig, MsSystem};
use mst_vkernel::{SpinLock, SyncMode};

fn system() -> MsSystem {
    MsSystem::new(MsConfig {
        processors: 1,
        ..MsConfig::default()
    })
}

fn bench_dispatch() {
    let mut ms = system();
    let mut g = MicroGroup::new("interpreter");
    // ~6 bytecodes per loop iteration, 100k iterations.
    let loop_100k = ms
        .prepare("| i | i := 0. [i < 100000] whileTrue: [i := i + 1]. i")
        .unwrap();
    g.throughput(600_000).bench("bytecode_dispatch_loop", || {
        ms.run_prepared(&loop_100k).unwrap();
    });
    let sends = ms.prepare("Benchmark callHeavy: 10000").unwrap();
    g.throughput(70_000) // 7 activations per iter
        .bench("method_activation", || {
            ms.run_prepared(&sends).unwrap();
        });
    let alloc = ms.prepare("Benchmark allocHeavy: 10000").unwrap();
    g.throughput(20_000).bench("allocation", || {
        ms.run_prepared(&alloc).unwrap();
    });
    let dict = ms
        .prepare(
            "| d | d := Dictionary new.
             1 to: 200 do: [:i | d at: i put: i * i].
             d at: 100",
        )
        .unwrap();
    g.bench("image_dictionary", || {
        ms.run_prepared(&dict).unwrap();
    });
}

fn bench_compiler() {
    let mut ms = system();
    let mut g = MicroGroup::new("compiler");
    let compile = ms
        .prepare("Benchmark compile: 'microBenchDummy ^3 + 4 * (5 - 2)'")
        .unwrap();
    g.bench("compile_method_primitive", || {
        ms.run_prepared(&compile).unwrap();
    });
    let decompile = ms.prepare("Object decompile: #printString").unwrap();
    g.bench("decompile_method_primitive", || {
        ms.run_prepared(&decompile).unwrap();
    });

    let ctx = mst_compiler::CompileContext::default();
    g.bench("rust_compile_direct", || {
        mst_compiler::compile("at: i put: v | t | t := v. self check: i. ^t", &ctx).unwrap();
    });
}

fn bench_gc() {
    let mut ms = system();
    let mut g = MicroGroup::new("gc");
    let churn = ms
        .prepare("1 to: 3000 do: [:i | Array new: 16]. Object new scavenge")
        .unwrap();
    g.bench("scavenge_after_churn", || {
        ms.run_prepared(&churn).unwrap();
    });
}

fn bench_locks() {
    let mut g = MicroGroup::new("vkernel");
    let mp = SpinLock::new(SyncMode::Multiprocessor);
    g.bench("spinlock_uncontended", || {
        let guard = mp.acquire();
        std::hint::black_box(&guard);
    });
    let uni = SpinLock::new(SyncMode::Uniprocessor);
    g.bench("spinlock_baseline_noop", || {
        let guard = uni.acquire();
        std::hint::black_box(&guard);
    });
}

fn main() {
    bench_dispatch();
    bench_compiler();
    bench_gc();
    bench_locks();
    mst_bench::harness::write_micro_json("BENCH_micro.json").expect("write BENCH_micro.json");
    println!("\nwrote BENCH_micro.json");
}
