//! Criterion micro-benchmarks (experiment M1 in DESIGN.md): the rates that
//! contextualize the macro results — bytecode dispatch, full sends,
//! allocation, context activation, spin-lock acquisition, scavenging.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mst_core::{MsConfig, MsSystem};
use mst_vkernel::{SpinLock, SyncMode};

fn system() -> MsSystem {
    MsSystem::new(MsConfig {
        processors: 1,
        ..MsConfig::default()
    })
}

fn bench_dispatch(c: &mut Criterion) {
    let mut ms = system();
    let mut g = c.benchmark_group("interpreter");
    // ~6 bytecodes per loop iteration, 100k iterations.
    let loop_100k = ms
        .prepare("| i | i := 0. [i < 100000] whileTrue: [i := i + 1]. i")
        .unwrap();
    g.throughput(Throughput::Elements(600_000));
    g.bench_function("bytecode_dispatch_loop", |b| {
        b.iter(|| ms.run_prepared(&loop_100k).unwrap())
    });
    let sends = ms.prepare("Benchmark callHeavy: 10000").unwrap();
    g.throughput(Throughput::Elements(70_000)); // 7 activations per iter
    g.bench_function("method_activation", |b| {
        b.iter(|| ms.run_prepared(&sends).unwrap())
    });
    let alloc = ms.prepare("Benchmark allocHeavy: 10000").unwrap();
    g.throughput(Throughput::Elements(20_000));
    g.bench_function("allocation", |b| {
        b.iter(|| ms.run_prepared(&alloc).unwrap())
    });
    let dict = ms
        .prepare(
            "| d | d := Dictionary new.
             1 to: 200 do: [:i | d at: i put: i * i].
             d at: 100",
        )
        .unwrap();
    g.bench_function("image_dictionary", |b| {
        b.iter(|| ms.run_prepared(&dict).unwrap())
    });
    g.finish();
}

fn bench_compiler(c: &mut Criterion) {
    let mut ms = system();
    let mut g = c.benchmark_group("compiler");
    let compile = ms
        .prepare("Benchmark compile: 'microBenchDummy ^3 + 4 * (5 - 2)'")
        .unwrap();
    g.bench_function("compile_method_primitive", |b| {
        b.iter(|| ms.run_prepared(&compile).unwrap())
    });
    let decompile = ms.prepare("Object decompile: #printString").unwrap();
    g.bench_function("decompile_method_primitive", |b| {
        b.iter(|| ms.run_prepared(&decompile).unwrap())
    });
    g.finish();

    let ctx = mst_compiler::CompileContext::default();
    c.bench_function("compiler/rust_compile_direct", |b| {
        b.iter(|| {
            mst_compiler::compile(
                "at: i put: v | t | t := v. self check: i. ^t",
                &ctx,
            )
            .unwrap()
        })
    });
}

fn bench_gc(c: &mut Criterion) {
    let mut ms = system();
    let mut g = c.benchmark_group("gc");
    g.sample_size(20);
    let churn = ms
        .prepare("1 to: 3000 do: [:i | Array new: 16]. Object new scavenge")
        .unwrap();
    g.bench_function("scavenge_after_churn", |b| {
        b.iter(|| ms.run_prepared(&churn).unwrap())
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("vkernel");
    let mp = SpinLock::new(SyncMode::Multiprocessor);
    g.bench_function("spinlock_uncontended", |b| {
        b.iter(|| {
            let _guard = mp.acquire();
        })
    });
    let uni = SpinLock::new(SyncMode::Uniprocessor);
    g.bench_function("spinlock_baseline_noop", |b| {
        b.iter(|| {
            let _guard = uni.acquire();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_dispatch, bench_compiler, bench_gc, bench_locks);
criterion_main!(benches);
